"""The per-module simlint rules and their registry.

Each rule is a generator ``rule(module, project) -> Iterator[Finding]``
registered under its ``SLxxx`` code.  ``project`` is the
:class:`Project` built from every collected module, which is what lets
class-level rules (SL003/SL005) see ``Component`` subclasses whose base
class lives in another file, and gives the whole-program rules
(SL007-SL009) their lazily built :class:`~repro.analysis.symbols.
SymbolTable` and :class:`~repro.analysis.callgraph.CallGraph`.

SL004 (layering) is graph-global rather than per-module and lives in
:mod:`repro.analysis.imports`; SL007-SL009 live in their own modules
(:mod:`~repro.analysis.rules_state`, :mod:`~repro.analysis.rules_hooks`,
:mod:`~repro.analysis.rules_schema`).  All are registered here so
``--select`` and ``--list-rules`` treat every rule uniformly.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from .callgraph import CallGraph
from .findings import Finding
from .imports import check_layering
from .modules import SourceModule
from .rules_hooks import check_hook_contract
from .rules_schema import check_schema_drift
from .rules_state import check_process_state
from .symbols import SymbolTable


@dataclass
class Project:
    """Cross-module context shared by every rule invocation."""

    modules: List[SourceModule]
    _component_classes: Optional[Set[str]] = field(default=None, repr=False)
    _symbols: Optional[SymbolTable] = field(default=None, repr=False)
    _callgraph: Optional[CallGraph] = field(default=None, repr=False)

    @property
    def symbols(self) -> SymbolTable:
        """The project symbol table, built on first use."""
        if self._symbols is None:
            self._symbols = SymbolTable(self.modules)
        return self._symbols

    @property
    def callgraph(self) -> CallGraph:
        """The project call/mutation/hook-site graph, built on first use."""
        if self._callgraph is None:
            self._callgraph = CallGraph(self.symbols)
        return self._callgraph

    @property
    def component_classes(self) -> Set[str]:
        """Names of ``Component`` subclasses, transitively, project-wide."""
        if self._component_classes is None:
            bases: Dict[str, Set[str]] = {}
            for module in self.modules:
                for node in ast.walk(module.tree):
                    if isinstance(node, ast.ClassDef):
                        names = set()
                        for base in node.bases:
                            if isinstance(base, ast.Name):
                                names.add(base.id)
                            elif isinstance(base, ast.Attribute):
                                names.add(base.attr)
                        bases.setdefault(node.name, set()).update(names)
            known: Set[str] = set()
            frontier = {"Component"}
            while frontier:
                known |= frontier
                frontier = {name for name, parents in bases.items()
                            if name not in known and parents & known}
            known.discard("Component")
            self._component_classes = known
        return self._component_classes


RuleFunc = Callable[[SourceModule, Project], Iterator[Finding]]


@dataclass(frozen=True)
class RuleSpec:
    code: str
    summary: str
    check: Optional[RuleFunc]   # None: graph-global, handled separately


RULES: Dict[str, RuleSpec] = {}


def rule(code: str, summary: str) -> Callable[[RuleFunc], RuleFunc]:
    def register(func: RuleFunc) -> RuleFunc:
        RULES[code] = RuleSpec(code, summary, func)
        return func
    return register


def _enclosing_symbols(tree: ast.Module) -> Dict[ast.AST, str]:
    """Map every node to its enclosing ``Class.method`` qualname."""
    symbols: Dict[ast.AST, str] = {}

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            name = prefix
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                name = f"{prefix}.{child.name}" if prefix else child.name
            symbols[child] = name
            visit(child, name)
    visit(tree, "")
    return symbols


def _walk_with_symbols(tree: ast.Module) -> Iterator[Tuple[ast.AST, str]]:
    symbols = _enclosing_symbols(tree)
    for node in ast.walk(tree):
        yield node, symbols.get(node, "")


# ---------------------------------------------------------------------------
# SL001 — determinism
# ---------------------------------------------------------------------------

#: Wall-clock calls: {base name: forbidden attributes}.
_WALL_CLOCK = {
    "time": {"time", "time_ns", "monotonic", "monotonic_ns",
             "perf_counter", "perf_counter_ns", "clock"},
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
}

#: ``random.<attr>()`` calls that hit the shared module-level RNG.
_RNG_CONSTRUCTORS = {"Random", "SystemRandom", "getstate"}
_NUMPY_RNG_CONSTRUCTORS = {"RandomState", "default_rng", "Generator",
                           "SeedSequence"}


def _attribute_chain(node: ast.expr) -> List[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    parts.reverse()
    return parts


@rule("SL001", "determinism: no wall-clock reads, no module-level RNG")
def check_determinism(module: SourceModule,
                      project: Project) -> Iterator[Finding]:
    # Names imported straight off the random module ("from random import
    # randrange") count as module-level RNG too.
    bare_rng: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                if alias.name not in _RNG_CONSTRUCTORS:
                    bare_rng.add(alias.asname or alias.name)
    for node, symbol in _walk_with_symbols(module.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attribute_chain(node.func)
        if not chain:
            continue
        dotted = ".".join(chain)
        finding = None
        if len(chain) >= 2:
            base, attr = chain[-2], chain[-1]
            if (len(chain) >= 3 and chain[-3] in ("np", "numpy")
                    and base == "random"):
                if attr not in _NUMPY_RNG_CONSTRUCTORS:
                    finding = (f"module-level RNG call {dotted}() uses "
                               f"numpy's shared global state; inject a "
                               f"Generator/RandomState")
            elif base in _WALL_CLOCK and attr in _WALL_CLOCK[base]:
                finding = (f"wall-clock call {dotted}() breaks run-to-run "
                           f"reproducibility; derive timing from SimClock")
            elif base == "random" and attr not in _RNG_CONSTRUCTORS:
                finding = (f"module-level RNG call {dotted}() uses shared "
                           f"global state; inject a seeded random.Random")
        if finding is None and len(chain) == 1 and chain[0] in bare_rng:
            finding = (f"module-level RNG call {chain[0]}() (imported from "
                       f"random) uses shared global state; inject a seeded "
                       f"random.Random")
        if finding:
            yield Finding(code="SL001", path=module.display_path,
                          line=node.lineno, col=node.col_offset,
                          message=finding,
                          symbol=f"{symbol}:{dotted}")


# ---------------------------------------------------------------------------
# SL002 — config-owned latencies
# ---------------------------------------------------------------------------

#: Identifier fragments that mark a value as a timing parameter.
_LATENCY_NAME = re.compile(r"(?:^|_)(?:lat|latency|latencies|cycles?)(?:$|_)",
                           re.IGNORECASE)

#: Modules allowed to hold latency literals: Table 2 itself and the
#: engine (whose clock/port machinery defines what a cycle *is*).
_SL002_EXEMPT = re.compile(r"^repro\.(config$|engine(\.|$))")


def _int_literal(node: ast.expr) -> Optional[int]:
    if (isinstance(node, ast.Constant) and type(node.value) is int):
        return node.value
    return None


def _terminal_name(target: ast.expr) -> Optional[str]:
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


@rule("SL002", "config-owned latencies: timing literals live in "
               "SystemConfig or the engine")
def check_latency_literals(module: SourceModule,
                           project: Project) -> Iterator[Finding]:
    if _SL002_EXEMPT.match(module.module or ""):
        return
    for node, symbol in _walk_with_symbols(module.tree):
        sites: List[Tuple[str, ast.expr, ast.AST]] = []
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            positional = args.posonlyargs + args.args
            for arg, default in zip(positional[len(positional)
                                               - len(args.defaults):],
                                    args.defaults):
                sites.append((arg.arg, default, default))
            for arg, default in zip(args.kwonlyargs, args.kw_defaults):
                if default is not None:
                    sites.append((arg.arg, default, default))
        elif isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg:
                    sites.append((keyword.arg, keyword.value, keyword.value))
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                name = _terminal_name(target)
                if name:
                    sites.append((name, node.value, node))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            name = _terminal_name(node.target)
            if name and node.value is not None:
                sites.append((name, node.value, node))
        for name, value, anchor in sites:
            literal = _int_literal(value)
            if literal is None or literal == 0:
                continue
            if not _LATENCY_NAME.search(name):
                continue
            yield Finding(
                code="SL002", path=module.display_path,
                line=anchor.lineno, col=anchor.col_offset,
                message=(f"latency literal {name}={literal}; route it "
                         f"through a SystemConfig field so Table 2 stays "
                         f"the single owner of timing parameters"),
                symbol=f"{symbol}:{name}")


# ---------------------------------------------------------------------------
# SL003 — stats discipline
# ---------------------------------------------------------------------------

_INIT_METHODS = {"__init__", "__post_init__", "init_component"}
_REGISTRATION_CALLS = {"counter", "gauge", "register_block", "own_block"}


def _self_attr(node: ast.expr) -> Optional[str]:
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


@rule("SL003", "stats discipline: Component counters must reach the "
               "StatsRegistry, not ad-hoc self attributes")
def check_stats_discipline(module: SourceModule,
                           project: Project) -> Iterator[Finding]:
    components = project.component_classes
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef) or node.name not in components:
            continue
        initialised: Dict[str, int] = {}   # attr -> line of "self.x = <int>"
        augmented: Dict[str, ast.AugAssign] = {}
        registered: Set[str] = set()
        for child in node.body:
            # Dataclass-style counter fields: ``hits: int = 0``.
            if (isinstance(child, ast.AnnAssign)
                    and isinstance(child.target, ast.Name)
                    and child.value is not None
                    and _int_literal(child.value) is not None):
                initialised.setdefault(child.target.id, child.lineno)
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    attr = _self_attr(target)
                    if attr is None:
                        continue
                    if _int_literal(sub.value) is not None:
                        initialised.setdefault(attr, sub.lineno)
                    elif (isinstance(sub.value, ast.Call)
                          and isinstance(sub.value.func, ast.Attribute)
                          and sub.value.func.attr in _REGISTRATION_CALLS):
                        registered.add(attr)
            elif isinstance(sub, ast.AugAssign):
                attr = _self_attr(sub.target)
                if attr is not None:
                    augmented.setdefault(attr, sub)
            elif isinstance(sub, ast.Call):
                func = sub.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in _REGISTRATION_CALLS):
                    for arg in list(sub.args) + [k.value for k in
                                                 sub.keywords]:
                        if (isinstance(arg, ast.Constant)
                                and isinstance(arg.value, str)):
                            registered.add(arg.value)
                        attr = _self_attr(arg)
                        if attr is not None:
                            registered.add(attr)
        for attr, aug in sorted(augmented.items()):
            if (attr.startswith("_") or attr not in initialised
                    or attr in registered):
                continue
            yield Finding(
                code="SL003", path=module.display_path,
                line=aug.lineno, col=aug.col_offset,
                message=(f"ad-hoc counter self.{attr} on Component "
                         f"{node.name!r} never reaches the StatsRegistry; "
                         f"use stats_scope.counter()/own_block() so "
                         f"snapshot/reset/merge see it"),
                symbol=f"{node.name}:{attr}")


# ---------------------------------------------------------------------------
# SL005 — component protocol
# ---------------------------------------------------------------------------

def _calls_component_init(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "init_component"):
            return True
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "__init__"
                and isinstance(node.func.value, ast.Call)
                and isinstance(node.func.value.func, ast.Name)
                and node.func.value.func.id == "super"):
            return True
    return False


@rule("SL005", "component protocol: subclasses run init_component and "
               "never rebind sim_clock")
def check_component_protocol(module: SourceModule,
                             project: Project) -> Iterator[Finding]:
    components = project.component_classes
    owner = module.module == "repro.engine.component"
    for node, symbol in _walk_with_symbols(module.tree):
        if (not owner and isinstance(node, (ast.Assign, ast.AugAssign))):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if (isinstance(target, ast.Attribute)
                        and target.attr == "sim_clock"):
                    yield Finding(
                        code="SL005", path=module.display_path,
                        line=node.lineno, col=node.col_offset,
                        message=("sim_clock is wired once by "
                                 "init_component/attach_child; rebinding it "
                                 "forks the machine's timeline"),
                        symbol=f"{symbol}:sim_clock")
        if not isinstance(node, ast.ClassDef) or node.name not in components:
            continue
        inits = [child for child in node.body
                 if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                 and child.name in ("__init__", "__post_init__")]
        if inits and not any(_calls_component_init(init) for init in inits):
            yield Finding(
                code="SL005", path=module.display_path,
                line=node.lineno, col=node.col_offset,
                message=(f"Component subclass {node.name!r} defines "
                         f"__init__/__post_init__ without calling "
                         f"init_component or super().__init__; it never "
                         f"joins the component tree"),
                symbol=f"{node.name}:init")


# ---------------------------------------------------------------------------
# SL006 — hot-path memory discipline
# ---------------------------------------------------------------------------

#: Module-level marker comment opting a file into SL006.  It lives in the
#: file head (before the docstring ends) rather than in the AST, so the
#: rule sniffs the first few source lines.
_HOT_PATH_MARKER = re.compile(r"#\s*simlint:\s*hot-path\b")

#: How many leading lines may carry the marker.
_MARKER_WINDOW = 5

_EXCEPTION_BASES = {"Exception", "BaseException", "RuntimeError",
                    "ValueError", "TypeError", "KeyError", "OSError",
                    "ArithmeticError", "LookupError"}


def _module_is_hot_path(module: SourceModule) -> bool:
    try:
        with open(module.path, "r") as handle:
            for _ in range(_MARKER_WINDOW):
                line = handle.readline()
                if not line:
                    break
                if _HOT_PATH_MARKER.search(line):
                    return True
    except OSError:
        return False
    return False


def _base_names(node: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def _is_exception_class(node: ast.ClassDef) -> bool:
    return any(name in _EXCEPTION_BASES
               or name.endswith("Error") or name.endswith("Exception")
               or name.endswith("Fault") or name.endswith("Warning")
               for name in _base_names(node))


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        chain = _attribute_chain(target)
        if chain and chain[-1] == "dataclass":
            return True
    return False


def _declares_slots(node: ast.ClassDef) -> bool:
    for child in node.body:
        if isinstance(child, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "__slots__"
                   for t in child.targets):
                return True
        elif (isinstance(child, ast.AnnAssign)
              and isinstance(child.target, ast.Name)
              and child.target.id == "__slots__"):
            return True
    return False


@rule("SL006", "hot-path memory: classes in '# simlint: hot-path' modules "
               "declare __slots__")
def check_hot_path_slots(module: SourceModule,
                         project: Project) -> Iterator[Finding]:
    """Instance dicts on per-access objects dominate simulator memory.

    A module opts in with a ``# simlint: hot-path`` comment in its first
    few lines; every top-level class there must then declare
    ``__slots__``.  Exempt: dataclasses (Python 3.9 cannot combine the
    decorator with ``__slots__`` and field defaults, and the stats
    blocks' ``vars()``-based snapshots need the instance dict),
    ``Component`` subclasses (the component tree relies on the instance
    dict), and exception classes.
    """
    if not _module_is_hot_path(module):
        return
    components = project.component_classes
    for node in module.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        if node.name in components or node.name == "Component":
            continue
        if _is_dataclass(node) or _is_exception_class(node):
            continue
        if _declares_slots(node):
            continue
        yield Finding(
            code="SL006", path=module.display_path,
            line=node.lineno, col=node.col_offset,
            message=(f"class {node.name!r} in a hot-path module has no "
                     f"__slots__; per-access instances grow a dict each — "
                     f"declare __slots__ or exempt the module"),
            symbol=f"{node.name}:__slots__")


# SL004 is graph-global (it needs every module at once); the spec is
# registered here so rule listings and --select stay uniform.
RULES["SL004"] = RuleSpec(
    "SL004",
    "layering: engine -> {mem, core, cpu, osmodel, obs} -> techniques -> "
    "{eval, workloads, sparse}; no upward imports, no cycles",
    None)

check_layering_project = check_layering

# The whole-program rules live in their own modules; register their
# checks here so the registry stays the single list of every rule.
RULES["SL007"] = RuleSpec(
    "SL007",
    "process state: function-scope-mutated module globals in sim layers "
    "must be registered with repro.engine.process_state",
    check_process_state)
RULES["SL008"] = RuleSpec(
    "SL008",
    "hook contract: every HOOKS call sits under an armed-check, and every "
    "architectural-state module has a reachable hook site",
    check_hook_contract)
RULES["SL009"] = RuleSpec(
    "SL009",
    "schema drift: results payload keys, mirrored literals and profiler "
    "stat names stay in sync with repro.obs schemas",
    check_schema_drift)

ALL_CODES = tuple(sorted(RULES))
