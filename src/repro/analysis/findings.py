"""Findings, per-line pragmas and the grandfathering baseline.

A :class:`Finding` is one rule violation at one source location.  Its
*fingerprint* — ``(path, code, symbol)`` — deliberately excludes the
line number so a baseline entry survives unrelated edits to the file;
``symbol`` is the enclosing definition (``Class.method``) plus the
offending identifier, which moves far less often than line numbers do.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Set, Tuple

#: ``# simlint: disable=SL001,SL004`` (or ``disable=all``) on a line
#: suppresses that line's findings.
PRAGMA_RE = re.compile(
    r"#\s*simlint\s*:\s*disable\s*=\s*([A-Za-z0-9_,\s]+)")


def parse_pragmas(lines: Iterable[str]) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the codes disabled on that line."""
    disabled: Dict[int, Set[str]] = {}
    for number, text in enumerate(lines, start=1):
        match = PRAGMA_RE.search(text)
        if match:
            codes = {code.strip().upper() if code.strip() != "all" else "all"
                     for code in match.group(1).split(",") if code.strip()}
            disabled[number] = {c.lower() if c == "ALL" else c for c in codes}
    return disabled


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str          # "SL001" .. "SL005"
    path: str          # repo-relative, forward slashes
    line: int          # 1-based
    col: int           # 0-based (ast convention)
    message: str
    symbol: str = ""   # fingerprint anchor: "Class.method:identifier"

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        return (self.path, self.code, self.symbol or self.message)

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_json(self) -> Dict[str, object]:
        return {"code": self.code, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message,
                "symbol": self.symbol}


def suppressed(finding: Finding, disabled: Dict[int, Set[str]]) -> bool:
    codes = disabled.get(finding.line)
    return bool(codes) and ("all" in codes or finding.code in codes)


@dataclass
class Baseline:
    """The checked-in set of grandfathered findings.

    New code must lint clean; the baseline lets a rule land before every
    historical violation is fixed, without letting *new* violations in.
    """

    path: Path
    fingerprints: Set[Tuple[str, str, str]] = field(default_factory=set)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        baseline = cls(path=path)
        if path.is_file():
            payload = json.loads(path.read_text())
            for entry in payload.get("findings", []):
                baseline.fingerprints.add(
                    (entry["path"], entry["code"],
                     entry.get("symbol") or entry.get("message", "")))
        return baseline

    def contains(self, finding: Finding) -> bool:
        return finding.fingerprint in self.fingerprints

    def write(self, findings: Iterable[Finding]) -> None:
        entries: List[Dict[str, str]] = []
        seen: Set[Tuple[str, str, str]] = set()
        for finding in sorted(findings,
                              key=lambda f: (f.path, f.code, f.symbol)):
            if finding.fingerprint in seen:
                continue
            seen.add(finding.fingerprint)
            entries.append({"path": finding.path, "code": finding.code,
                            "symbol": finding.symbol or finding.message})
        payload = {"version": 1, "findings": entries}
        self.path.write_text(json.dumps(payload, indent=2) + "\n")
        self.fingerprints = seen
