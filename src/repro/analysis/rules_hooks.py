"""SL008 — hook-contract coverage: zero overhead off, observable on.

:mod:`repro.engine.tracing` promises two things at once:

1. **Zero overhead when off** — a hook slot that is not armed must cost
   nothing beyond one ``is not None`` test.  Any call through
   ``HOOKS.active`` / ``HOOKS.sampler`` / ``HOOKS.faults`` (or a local
   alias like ``sink = HOOKS.active``) that is *not* dominated by an
   armed-check allocates event payloads and takes attribute hops on the
   hot path even with tracing disabled.
2. **Observable when on** — the architectural-state modules (OMT walks,
   overlay bit-vector copies, TLB fills/shootdowns, coherence
   broadcasts, OMS mappings, DRAM traffic) are the whole point of the
   tracer; a module that mutates architectural state with *no* hook
   site reachable from its public methods is invisible to
   ``repro.obs``, and regressions there can't be caught by
   trace-differential tests.

This rule checks both halves interprocedurally using the call graph:
every hook site must be guarded (per site), and every module in
:data:`ARCH_STATE_MODULES` must have at least one guarded hook site
reachable from one of its top-level class methods.
"""

from __future__ import annotations

from typing import Iterator

from .findings import Finding
from .modules import SourceModule

#: Modules that own mutable architectural state and therefore must
#: publish at least one trace event on a mutation path.  Keyed by dotted
#: module name; the value names the state for the finding message.
ARCH_STATE_MODULES = {
    "repro.core.omt": "OMT entries / walk results",
    "repro.core.obitvector": "overlay bit vectors",
    "repro.core.tlb": "TLB entries (fills, evictions, shootdowns)",
    "repro.core.coherence": "coherence directory state",
    "repro.core.oms": "overlay-on-demand mappings",
    "repro.mem.dram": "DRAM open-row / access state",
    "repro.mem.hierarchy": "cache-hierarchy line state",
}


def check_hook_contract(module: SourceModule, project) -> Iterator[Finding]:
    """SL008: unguarded hook sites + uninstrumented arch-state modules."""
    graph = project.callgraph
    table = project.symbols

    for site in graph.hook_sites:
        if site.path != module.display_path or site.guarded:
            continue
        yield Finding(
            code="SL008", path=module.display_path,
            line=site.lineno, col=site.col,
            message=(f"call through HOOKS.{site.slot} is not dominated by "
                     f"an armed-check; wrap it in "
                     f"`if HOOKS.{site.slot} is not None:` (or alias the "
                     f"slot first: `sink = HOOKS.{site.slot}`) so disabled "
                     f"tracing stays zero-overhead"),
            symbol=f"{site.slot}.{site.method}:unguarded-hook")

    what = ARCH_STATE_MODULES.get(module.module)
    if what is None:
        return
    symbols = table.by_path.get(module.display_path)
    if symbols is None:
        return
    seeds = {f"{module.module}:{klass.name}.{method}"
             for klass in symbols.classes.values()
             for method in klass.methods}
    covered = graph.reachable(seeds)
    for site in graph.hook_sites:
        if site.guarded and site.func in covered:
            return
    yield Finding(
        code="SL008", path=module.display_path, line=1, col=0,
        message=(f"architectural-state module {module.module} ({what}) has "
                 f"no guarded HOOKS site reachable from any of its class "
                 f"methods; emit a trace event on the mutation path so "
                 f"repro.obs can observe this state"),
        symbol=f"{module.module}:uninstrumented")
