"""``repro.analysis`` — *simlint*, the simulator's architectural linter.

The engine contract introduced with :mod:`repro.engine` (one component
tree, one clock, one stats registry, Table 2 owned by
:class:`repro.config.SystemConfig`) only stays true if it is
machine-checked.  This package is a small AST/import-graph linter with
simulator-specific rules:

* **SL001 determinism** — no wall-clock reads (``time.time()``,
  ``datetime.now()``) and no module-level ``random.*`` calls in
  simulation code; randomness must flow through an injected, seeded
  ``random.Random``.
* **SL002 config-owned latencies** — integer latency/cycle literals
  belong in ``repro/config.py`` (Table 2) or ``repro/engine/``; anywhere
  else they silently fork the timing model.
* **SL003 stats discipline** — components under a
  :class:`~repro.engine.component.Component` stats scope may not grow
  ad-hoc ``self.x += 1`` counters that never reach the StatsRegistry.
* **SL004 layering** — the layer DAG ``engine -> {mem, core, cpu,
  osmodel} -> techniques -> {eval, workloads, sparse}`` admits no upward
  *import-time* imports and no module cycles.
* **SL005 component protocol** — every Component subclass runs
  ``init_component`` / ``super().__init__`` and never rebinds
  ``sim_clock``.
* **SL006 hot-path memory** — classes in ``# simlint: hot-path``
  modules declare ``__slots__``.
* **SL007 process-state safety** *(whole-program)* — every
  module-level global in a ranked layer that is mutated from function
  scope anywhere in the project must be registered with
  :mod:`repro.engine.process_state`.
* **SL008 hook-contract coverage** *(whole-program)* — every
  ``HOOKS.<slot>`` call sits under an armed-check, and every
  architectural-state module keeps a guarded hook site reachable from
  its class methods.
* **SL009 schema drift** *(whole-program)* — results payload keys,
  mirrored literals and profiler stat names stay in sync with the
  ``repro.obs`` schemas.

The whole-program rules run on a project symbol table
(:mod:`~repro.analysis.symbols`) and a call/mutation/hook-site graph
(:mod:`~repro.analysis.callgraph`) built lazily over every collected
module — still ASTs only, nothing imported or executed.

Run it with ``python -m repro.analysis src benchmarks examples`` (or the
``simlint`` console script).  ``--explain SLxxx`` prints a rule's
rationale and a worked fix; ``--format sarif`` emits SARIF 2.1.0 for
code-scanning UIs.  Escape hatches: a per-line
``# simlint: disable=SLxxx`` pragma, and a checked-in baseline file for
grandfathered findings (``simlint.baseline.json``).

The package is deliberately self-contained (stdlib only, no imports
from the simulator), so it can lint the tree it lives in without
executing any of it.
"""

from .findings import Baseline, Finding
from .modules import SourceModule, collect_modules
from .imports import LAYER_RANKS, build_import_graph
from .symbols import SymbolTable
from .callgraph import CallGraph
from .explain import EXPLANATIONS
from .rules import ALL_CODES, RULES, RuleSpec, Project
from .sarif import sarif_document
from .cli import lint_paths, main

__all__ = [
    "ALL_CODES", "Baseline", "CallGraph", "EXPLANATIONS", "Finding",
    "LAYER_RANKS", "Project", "RULES", "RuleSpec", "SourceModule",
    "SymbolTable", "build_import_graph", "collect_modules", "lint_paths",
    "main", "sarif_document",
]
