"""Project symbol table: name resolution across every collected module.

The per-file rules (SL001-SL006) only ever look at one AST at a time;
the whole-program rules (SL007-SL009) need to answer questions like
"``HOOKS.active`` in ``cpu/core.py`` — which module-level object is
that?" and "which class does ``self.fill`` resolve to on this
``Component`` subclass?".  This module builds the table that answers
them:

* per module: top-level classes (with their methods and raw base
  names), top-level functions, module-level assignments, and the
  import alias map (``from ..engine.tracing import HOOKS`` binds the
  local name ``HOOKS`` to ``repro.engine.tracing.HOOKS``);
* across modules: :meth:`SymbolTable.resolve` follows an attribute
  chain through the alias map to the defining module, and
  :meth:`SymbolTable.resolve_method` walks a class's bases (project
  classes only, left-to-right depth-first — Python's MRO restricted to
  what static analysis can see) to the defining class.

Everything is derived from the ASTs already parsed by
:mod:`repro.analysis.modules`; nothing is imported or executed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .imports import resolve_import_from
from .modules import SourceModule


@dataclass(frozen=True)
class QualifiedRef:
    """A chain resolved to ``symbol`` in ``module``, plus trailing attrs.

    ``HOOKS.active.emit`` in ``cpu/core.py`` resolves to
    ``QualifiedRef(module="repro.engine.tracing", symbol="HOOKS",
    attrs=("active", "emit"))``.
    """

    module: str
    symbol: str
    attrs: Tuple[str, ...] = ()

    @property
    def dotted(self) -> str:
        return ".".join((self.module, self.symbol) + self.attrs)


@dataclass
class FunctionSymbol:
    """One function or method definition."""

    name: str
    qualname: str                  # "func" or "Class.method"
    module: str                    # dotted module name ("" outside packages)
    node: ast.AST                  # FunctionDef | AsyncFunctionDef
    lineno: int = 0

    def __post_init__(self) -> None:
        self.lineno = self.node.lineno


@dataclass
class ClassSymbol:
    """One top-level class: raw base names + its methods."""

    name: str
    module: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionSymbol] = field(default_factory=dict)
    owner: Optional["ModuleSymbols"] = field(default=None, repr=False)

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class GlobalVar:
    """One module-level assignment (``NAME = <expr>``)."""

    name: str
    module: str
    lineno: int
    value: Optional[ast.expr]      # None: annotation-only declaration


@dataclass
class ModuleSymbols:
    """Everything defined or imported at the top level of one module."""

    source: SourceModule
    imports: Dict[str, str] = field(default_factory=dict)
    classes: Dict[str, ClassSymbol] = field(default_factory=dict)
    functions: Dict[str, FunctionSymbol] = field(default_factory=dict)
    globals: Dict[str, GlobalVar] = field(default_factory=dict)

    @property
    def module(self) -> str:
        return self.source.module


def attribute_chain(node: ast.expr) -> List[str]:
    """``a.b.c`` -> ``["a", "b", "c"]``; ``[]`` when the base is not a Name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return []
    parts.append(node.id)
    parts.reverse()
    return parts


def _collect_imports(module: SourceModule) -> Dict[str, str]:
    aliases: Dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    # ``import a.b.c`` binds ``a``; attribute chains
                    # starting at ``a`` resolve through the full path.
                    aliases.setdefault(alias.name.split(".")[0],
                                       alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            target = resolve_import_from(node, module.package)
            if target is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = \
                    f"{target}.{alias.name}"
    return aliases


def _collect_module(module: SourceModule) -> ModuleSymbols:
    symbols = ModuleSymbols(source=module,
                            imports=_collect_imports(module))
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef):
            klass = ClassSymbol(name=node.name, module=module.module,
                                node=node, owner=symbols)
            for base in node.bases:
                chain = attribute_chain(base)
                if chain:
                    klass.bases.append(".".join(chain))
            for child in node.body:
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    klass.methods[child.name] = FunctionSymbol(
                        name=child.name,
                        qualname=f"{node.name}.{child.name}",
                        module=module.module, node=child)
            symbols.classes[node.name] = klass
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            symbols.functions[node.name] = FunctionSymbol(
                name=node.name, qualname=node.name,
                module=module.module, node=node)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    symbols.globals.setdefault(
                        target.id, GlobalVar(target.id, module.module,
                                             node.lineno, node.value))
        elif isinstance(node, ast.AnnAssign) and \
                isinstance(node.target, ast.Name):
            symbols.globals.setdefault(
                node.target.id, GlobalVar(node.target.id, module.module,
                                          node.lineno, node.value))
    return symbols


class SymbolTable:
    """All collected modules, indexed for cross-module resolution."""

    def __init__(self, modules: List[SourceModule]) -> None:
        self.by_path: Dict[str, ModuleSymbols] = {}
        self.by_name: Dict[str, ModuleSymbols] = {}
        for module in modules:
            symbols = _collect_module(module)
            self.by_path[module.display_path] = symbols
            if module.module and module.module not in self.by_name:
                self.by_name[module.module] = symbols

    def modules(self) -> Iterator[ModuleSymbols]:
        return iter(self.by_path.values())

    def module(self, name: str) -> Optional[ModuleSymbols]:
        return self.by_name.get(name)

    # -- resolution ----------------------------------------------------------

    def _split_dotted(self, dotted: Tuple[str, ...]) -> Optional[QualifiedRef]:
        """Longest known module prefix of *dotted*, rest = symbol + attrs."""
        for cut in range(len(dotted) - 1, 0, -1):
            prefix = ".".join(dotted[:cut])
            if prefix in self.by_name:
                return QualifiedRef(prefix, dotted[cut],
                                    tuple(dotted[cut + 1:]))
        # The whole chain may name a module (``import repro.engine``
        # then ``repro.engine`` used bare) — not a symbol reference.
        return None

    def resolve(self, symbols: ModuleSymbols,
                chain: List[str]) -> Optional[QualifiedRef]:
        """Resolve an attribute chain seen in *symbols*' module.

        Returns the defining module + top-level symbol + remaining
        attribute path, or ``None`` for names this table cannot see
        (builtins, function locals, unknown packages).
        """
        if not chain:
            return None
        head = chain[0]
        if head in symbols.imports:
            dotted = tuple(symbols.imports[head].split(".")) \
                + tuple(chain[1:])
            ref = self._split_dotted(dotted)
            if ref is not None:
                return ref
            return None
        if (head in symbols.classes or head in symbols.functions
                or head in symbols.globals):
            return QualifiedRef(symbols.module, head, tuple(chain[1:]))
        return None

    def lookup_class(self, ref: QualifiedRef) -> Optional[ClassSymbol]:
        owner = self.by_name.get(ref.module)
        if owner is None:
            return None
        return owner.classes.get(ref.symbol)

    def lookup_function(self, ref: QualifiedRef) -> Optional[FunctionSymbol]:
        owner = self.by_name.get(ref.module)
        if owner is None:
            return None
        return owner.functions.get(ref.symbol)

    def lookup_global(self, ref: QualifiedRef) -> Optional[GlobalVar]:
        owner = self.by_name.get(ref.module)
        if owner is None:
            return None
        return owner.globals.get(ref.symbol)

    # -- method resolution ---------------------------------------------------

    def base_classes(self, klass: ClassSymbol) -> List[ClassSymbol]:
        """*klass*'s direct project-visible base classes."""
        owner = klass.owner or self.by_name.get(klass.module)
        bases: List[ClassSymbol] = []
        if owner is None:
            return bases
        for raw in klass.bases:
            ref = self.resolve(owner, raw.split("."))
            if ref is not None and not ref.attrs:
                resolved = self.lookup_class(ref)
                if resolved is not None:
                    bases.append(resolved)
        return bases

    def mro(self, klass: ClassSymbol) -> List[ClassSymbol]:
        """Left-to-right depth-first linearisation over project classes."""
        order: List[ClassSymbol] = []
        seen = set()
        stack = [klass]
        while stack:
            current = stack.pop(0)
            key = (current.module, current.name)
            if key in seen:
                continue
            seen.add(key)
            order.append(current)
            stack = self.base_classes(current) + stack
        return order

    def resolve_method(self, klass: ClassSymbol,
                       method: str) -> Optional[FunctionSymbol]:
        """The defining :class:`FunctionSymbol` of ``klass.method``."""
        for ancestor in self.mro(klass):
            if method in ancestor.methods:
                return ancestor.methods[method]
        return None

    def find_class_of_method(self, symbols: ModuleSymbols,
                             node: ast.AST) -> Optional[ClassSymbol]:
        """The top-level class whose body (transitively) holds *node*."""
        for klass in symbols.classes.values():
            for candidate in ast.walk(klass.node):
                if candidate is node:
                    return klass
        return None
