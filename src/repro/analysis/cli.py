"""The simlint command line: ``python -m repro.analysis`` / ``simlint``.

Exit codes: 0 — clean (every finding pragma-suppressed or baselined);
1 — new findings; 2 — usage error (unknown rule, missing path).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from .explain import EXPLANATIONS
from .findings import Baseline, Finding, suppressed
from .imports import check_layering
from .modules import collect_modules
from .rules import ALL_CODES, RULES, Project
from .sarif import sarif_document

DEFAULT_PATHS = ("src", "benchmarks", "examples")
DEFAULT_BASELINE = "simlint.baseline.json"


def lint_paths(paths: Iterable[Path], select: Optional[Iterable[str]] = None,
               root: Optional[Path] = None) -> List[Finding]:
    """Run the selected rules over *paths*; pragmas already applied."""
    codes = set(select) if select else set(ALL_CODES)
    modules = collect_modules(paths, root=root)
    project = Project(modules)
    findings: List[Finding] = []
    by_path = {module.display_path: module for module in modules}
    for module in modules:
        for code in sorted(codes):
            spec = RULES[code]
            if spec.check is None:
                continue
            findings.extend(spec.check(module, project))
    if "SL004" in codes:
        findings.extend(check_layering(modules))
    kept = []
    for finding in findings:
        module = by_path.get(finding.path)
        if module is not None and suppressed(finding, module.disabled):
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return kept


def _split_baseline(findings: Sequence[Finding], baseline: Baseline
                    ) -> Tuple[List[Finding], List[Finding]]:
    new = [f for f in findings if not baseline.contains(f)]
    old = [f for f in findings if baseline.contains(f)]
    return new, old


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="simlint",
        description="Architectural lint for the page-overlays simulator "
                    "(determinism, layering, config-owned latencies, "
                    "stats discipline, component protocol, process-state "
                    "safety, hook-contract coverage, schema drift).")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint "
                             f"(default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--baseline", metavar="FILE",
                        default=DEFAULT_BASELINE,
                        help="baseline file of grandfathered findings "
                             f"(default: {DEFAULT_BASELINE})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from current findings "
                             "and exit 0")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default=None,
                        help="output format (default: text)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable JSON output "
                             "(alias for --format json)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list the rules and exit")
    parser.add_argument("--explain", metavar="CODE",
                        help="print a rule's rationale and a worked fix, "
                             "then exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in ALL_CODES:
            print(f"{code}  {RULES[code].summary}")
        return 0

    if args.explain:
        code = args.explain.strip().upper()
        if code not in RULES:
            print(f"simlint: unknown rule: {code}; "
                  f"known: {', '.join(ALL_CODES)}", file=sys.stderr)
            return 2
        explanation = EXPLANATIONS.get(code)
        if explanation is None:
            print(f"simlint: no explanation recorded for {code}",
                  file=sys.stderr)
            return 2
        print(explanation.format(RULES[code].summary))
        return 0

    output = args.format or ("json" if args.as_json else "text")

    select = None
    if args.select:
        select = [code.strip().upper() for code in args.select.split(",")
                  if code.strip()]
        unknown = [code for code in select if code not in RULES]
        if unknown:
            print(f"simlint: unknown rule(s): {', '.join(unknown)}; "
                  f"known: {', '.join(ALL_CODES)}", file=sys.stderr)
            return 2

    raw_paths = args.paths or [p for p in DEFAULT_PATHS if Path(p).exists()]
    paths = [Path(p) for p in raw_paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"simlint: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2

    findings = lint_paths(paths, select=select)

    baseline = Baseline(Path(args.baseline))
    if not args.no_baseline:
        baseline = Baseline.load(Path(args.baseline))
    if args.write_baseline:
        baseline.write(findings)
        print(f"simlint: wrote {len(findings)} finding(s) to "
              f"{args.baseline}")
        return 0
    new, old = _split_baseline(findings, baseline)

    if output == "sarif":
        print(json.dumps(sarif_document(findings, baseline), indent=2))
    elif output == "json":
        payload = {
            "version": 1,
            "counts": {"total": len(findings), "new": len(new),
                       "baselined": len(old)},
            "findings": [dict(f.as_json(), baselined=baseline.contains(f))
                         for f in findings],
        }
        print(json.dumps(payload, indent=2))
    else:
        for finding in new:
            print(finding.format())
        if old:
            print(f"simlint: {len(old)} baselined finding(s) suppressed "
                  f"({args.baseline})")
        if new:
            print(f"simlint: {len(new)} new finding(s)")
        else:
            print("simlint: clean")
    return 1 if new else 0


def run() -> int:
    """Console entry point: ``main`` plus a quiet exit when the reader
    closes the pipe early (``simlint --explain SL008 | head``)."""
    try:
        return main()
    except BrokenPipeError:
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
