"""Synthetic workload generators standing in for the paper's SPEC suite."""

from .spec_like import (BENCHMARKS, TYPE_ORDER, BenchmarkProfile,
                        measurement_trace, warmup_trace)

__all__ = ["BENCHMARKS", "TYPE_ORDER", "BenchmarkProfile",
           "measurement_trace", "warmup_trace"]
