"""Synthetic SPEC-CPU2006-like workloads for the fork experiment.

The paper picks 15 SPEC benchmarks in three types by write-working-set
structure (Section 5.1):

* **Type 1** — low write working set (bwaves, hmmer, libquantum,
  sphinx3, tonto): few pages are written after the fork, so both
  mechanisms consume little extra memory.
* **Type 2** — dense page updates (bzip2, cactus, lbm, leslie3d,
  soplex): almost every cache line of every modified page is updated, so
  both mechanisms converge to the same extra memory; performance depends
  on how close together in time a page's writes are (cactus writes its
  lines nearly back-to-back, which favours copy-on-write's bulk copy).
* **Type 3** — sparse page updates (astar, GemsFDTD, mcf, milc,
  omnetpp): only a few lines per modified page are updated, the case
  where overlays shine on both memory and performance.

SPEC itself is unavailable offline; these generators reproduce exactly
the structural properties the experiment depends on — how many pages are
written, how many lines within each written page, and how clustered in
time those writes are — with per-benchmark parameter presets.  Absolute
footprints are scaled down ~1000x from the 300M-instruction windows of
the paper (everything reported is a ratio or a per-page effect, so the
shape survives scaling).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.address import LINE_SIZE, LINES_PER_PAGE, PAGE_SIZE
from ..cpu.trace import MemoryAccess, Trace
from ..engine import process_state
from ..engine.rng import derive_rng


@dataclass(frozen=True)
class BenchmarkProfile:
    """Write-working-set structure of one SPEC-like benchmark."""

    name: str
    type_id: int              # 1, 2 or 3 (the paper's grouping)
    footprint_pages: int      # pages the benchmark touches overall
    write_pages: int          # distinct pages written after the fork
    lines_per_page: int       # distinct lines written per written page
    clustered_writes: bool    # True: a page's writes are back-to-back
    read_fraction: float      # reads per access in the measurement window
    gap: int                  # non-memory instructions per access

    @property
    def type_name(self) -> str:
        return f"Type {self.type_id}"


#: Parameter presets named after the paper's benchmarks.  write_pages and
#: lines_per_page encode each type's structure; small within-type
#: variation mirrors the spread visible in Figures 8 and 9.
BENCHMARKS: Dict[str, BenchmarkProfile] = {
    # Type 1: low write working set.
    "bwaves":  BenchmarkProfile("bwaves", 1, 512, 8, 8, False, 0.995, 6),
    "hmmer":   BenchmarkProfile("hmmer", 1, 384, 6, 12, False, 0.99, 6),
    "libq":    BenchmarkProfile("libq", 1, 256, 4, 16, True, 0.985, 7),
    "sphinx3": BenchmarkProfile("sphinx3", 1, 512, 10, 10, False, 0.995, 6),
    "tonto":   BenchmarkProfile("tonto", 1, 384, 12, 8, False, 0.99, 6),
    # Type 2: almost all lines of each written page are updated.
    "bzip2":    BenchmarkProfile("bzip2", 2, 768, 160, 60, False, 0.55, 5),
    "cactus":   BenchmarkProfile("cactus", 2, 768, 140, 64, True, 0.55, 5),
    "lbm":      BenchmarkProfile("lbm", 2, 1024, 220, 62, False, 0.50, 4),
    "leslie3d": BenchmarkProfile("leslie3d", 2, 896, 180, 60, False, 0.52, 5),
    "soplex":   BenchmarkProfile("soplex", 2, 640, 120, 56, False, 0.58, 5),
    # Type 3: only a few lines of each written page are updated.
    "astar":  BenchmarkProfile("astar", 3, 1024, 320, 7, False, 0.90, 5),
    "Gems":   BenchmarkProfile("Gems", 3, 1536, 420, 8, False, 0.88, 4),
    "mcf":    BenchmarkProfile("mcf", 3, 2048, 560, 6, False, 0.90, 4),
    "milc":   BenchmarkProfile("milc", 3, 1280, 380, 8, False, 0.88, 5),
    "omnet":  BenchmarkProfile("omnet", 3, 1024, 300, 7, False, 0.90, 5),
}

TYPE_ORDER = ["bwaves", "hmmer", "libq", "sphinx3", "tonto",
              "bzip2", "cactus", "lbm", "leslie3d", "soplex",
              "astar", "Gems", "mcf", "milc", "omnet"]

#: Memo of generated traces.  Trace construction is deterministic (frozen
#: profile + explicit seed), so identical requests rebuild byte-identical
#: traces; the memo skips the rebuild.  Only seeded requests are cached —
#: an injected rng carries hidden state and bypasses the memo.  Callers
#: get a fresh Trace wrapper over a copied access list, so appending to a
#: returned trace cannot corrupt the memo (MemoryAccess records are
#: immutable and safely shared).
_TRACE_MEMO: Dict[tuple, List[MemoryAccess]] = {}

#: Memo bound: one full sweep touches 15 benchmarks x 2 phases = 30
#: distinct keys, so 64 keeps every sweep hot while capping what a
#: long-lived campaign process (many scales/seeds) can accumulate.
#: Eviction is least-recently-used and purely deterministic — hits
#: refresh recency, inserts past the bound evict the stalest key.
TRACE_MEMO_CAPACITY = 64


def _memoized(key: tuple, build) -> Trace:
    accesses = _TRACE_MEMO.get(key)
    if accesses is None:
        accesses = build().accesses
        if len(_TRACE_MEMO) >= TRACE_MEMO_CAPACITY:
            _TRACE_MEMO.pop(next(iter(_TRACE_MEMO)))
        _TRACE_MEMO[key] = accesses
    else:
        # Refresh recency: dicts iterate in insertion order, so moving
        # a hit to the end makes the first key the LRU victim.
        _TRACE_MEMO.pop(key)
        _TRACE_MEMO[key] = accesses
    return Trace(list(accesses))


# The memo is a process-wide cache: a cleared (or differently warmed)
# memo must never change results — only rebuild cost.  Registering it
# lets reset_all/fork_guard drop it, and tests prove a reset-then-rerun
# is byte-identical to a fresh-process run.
process_state.register(
    "repro.workloads.spec_like._TRACE_MEMO",
    snapshot=lambda: tuple(
        (key[0], key[1].name) + key[2:] for key in _TRACE_MEMO),
    reset=_TRACE_MEMO.clear)


def warmup_trace(profile: BenchmarkProfile, base_vpn: int,
                 accesses: int = 4000, seed: Optional[int] = None,
                 rng: Optional[random.Random] = None) -> Trace:
    """Pre-fork phase: read-mostly traffic warming caches and TLBs.

    Randomness is deterministic: an injected *rng* wins, else a
    ``random.Random`` seeded from *seed* (default:
    ``SystemConfig.rng_seed + 1``, the phase's historical stream).
    """
    base = base_vpn * PAGE_SIZE
    span = profile.footprint_pages * PAGE_SIZE
    if rng is None:
        return _memoized(
            ("warmup", profile, base_vpn, accesses, seed),
            lambda: Trace.random_in_region(
                base, span, accesses, write_fraction=0.2,
                gap=profile.gap, rng=derive_rng(None, seed, stream=1)))
    rng = derive_rng(rng, seed, stream=1)
    return Trace.random_in_region(base, span, accesses,
                                  write_fraction=0.2, gap=profile.gap,
                                  rng=rng)


def measurement_trace(profile: BenchmarkProfile, base_vpn: int,
                      scale: float = 1.0, seed: Optional[int] = None,
                      rng: Optional[random.Random] = None) -> Trace:
    """Post-fork phase with the benchmark's write-working-set structure.

    ``scale`` multiplies the written-page count (for quick test runs).
    Randomness is deterministic: an injected *rng* wins, else a
    ``random.Random`` seeded from *seed* (default:
    ``SystemConfig.rng_seed + 2``, the phase's historical stream).
    """
    if rng is None:
        return _memoized(
            ("measurement", profile, base_vpn, scale, seed),
            lambda: measurement_trace(profile, base_vpn, scale=scale,
                                      rng=derive_rng(None, seed, stream=2)))
    rng = derive_rng(rng, seed, stream=2)
    base = base_vpn * PAGE_SIZE
    write_pages = max(1, round(profile.write_pages * scale))
    pages = rng.sample(range(profile.footprint_pages), write_pages)

    # Build the write schedule: (page, line) in either clustered order
    # (page by page) or scattered order (round-robin over pages, which
    # spreads each page's writes out in time).
    per_page_lines: List[List[int]] = []
    for page in pages:
        lines = rng.sample(range(LINES_PER_PAGE),
                           min(profile.lines_per_page, LINES_PER_PAGE))
        per_page_lines.append(lines)

    writes: List[MemoryAccess] = []
    if profile.clustered_writes:
        for page, lines in zip(pages, per_page_lines):
            for line in lines:
                writes.append(_write(base, page, line, rng, profile.gap))
    else:
        round_index = 0
        remaining = True
        while remaining:
            remaining = False
            for page, lines in zip(pages, per_page_lines):
                if round_index < len(lines):
                    writes.append(_write(base, page, lines[round_index],
                                         rng, profile.gap))
                    remaining = True
            round_index += 1

    # Interleave reads with the writes per the benchmark's read fraction.
    # Reads follow an 80/20 hot/cold split over the footprint — real
    # benchmarks have strong read locality, which keeps the steady-state
    # TLB/cache behaviour realistic at this scale.
    reads_needed = int(len(writes) * profile.read_fraction
                       / max(1e-9, 1.0 - profile.read_fraction))
    hot_pages = rng.sample(range(profile.footprint_pages),
                           max(1, min(32, profile.footprint_pages // 4)))
    reads: List[MemoryAccess] = []
    for _ in range(reads_needed):
        if rng.random() < 0.8:
            page = rng.choice(hot_pages)
        else:
            page = rng.randrange(profile.footprint_pages)
        vaddr = base + page * PAGE_SIZE + rng.randrange(PAGE_SIZE // 8) * 8
        reads.append(MemoryAccess(vaddr=vaddr, gap=profile.gap))
    trace = Trace(writes).interleave(Trace(reads))
    return trace


def _write(base: int, page: int, line: int, rng: random.Random,
           gap: int) -> MemoryAccess:
    offset = rng.randrange(LINE_SIZE // 8) * 8
    return MemoryAccess(vaddr=base + page * PAGE_SIZE + line * LINE_SIZE
                        + offset, write=True, gap=gap)
