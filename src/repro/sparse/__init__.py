"""Sparse-matrix substrate: pattern model, generators, and the three
representations evaluated in Section 5.2 (dense, CSR, overlay)."""

from .csr import CSRMatrix
from .dense import DenseMatrix
from .matrix_gen import (banded, block_diagonal, generate_with_locality,
                         locality_sweep, random_uniform, realworld_like_suite)
from .overlay_rep import OverlaySparseMatrix
from .pattern import MatrixPattern, VALUE_BYTES, VALUES_PER_LINE
from .spmv import (REPRESENTATIONS, SpMVResult, ideal_memory_bytes, run_spmv)

__all__ = ["CSRMatrix", "DenseMatrix", "MatrixPattern",
           "OverlaySparseMatrix", "REPRESENTATIONS", "SpMVResult",
           "VALUE_BYTES", "VALUES_PER_LINE", "banded", "block_diagonal",
           "generate_with_locality", "ideal_memory_bytes", "locality_sweep",
           "random_uniform", "realworld_like_suite", "run_spmv"]
