"""Synthetic sparse-matrix generation.

The paper evaluates on 87 real-world matrices from the UF Sparse Matrix
Collection [16], plotted as a function of their non-zero value locality
``L``.  The collection is unavailable offline, so these generators
produce matrices with *controlled* L (the variable the paper's Figures 10
and 11 sweep), plus structured families (banded, block, random) that
mimic the collection's structural diversity.  All per-non-zero metrics —
which is everything Figures 10 and 11 plot — are preserved under the
smaller sizes used here.
"""

from __future__ import annotations

import random
from typing import List, Optional

from .pattern import MatrixPattern, VALUES_PER_LINE
from ..engine.rng import derive_rng, resolve_seed


def default_run_length(locality: float) -> int:
    """Non-zero-line run length implied by a locality value.

    Real matrices with high intra-line locality (banded, block-structured)
    also exhibit high inter-line locality: their non-zero lines come in
    contiguous runs, up to fully dense pages at L = 8 (e.g. raefsky4 in
    the paper, whose non-zero lines contain no zeros at all).  Scattered
    matrices (L ≈ 1) have isolated non-zero lines.  This quadratic map
    spans those extremes: L=1 -> 1-line runs, L=8 -> 64-line (full-page)
    runs.
    """
    fraction = (locality / VALUES_PER_LINE) ** 2
    return max(1, round(fraction * 64))


def generate_with_locality(rows: int, cols: int, nnz: int, locality: float,
                           seed: Optional[int] = None,
                           name: Optional[str] = None,
                           run_length: Optional[int] = None,
                           rng: Optional[random.Random] = None
                           ) -> MatrixPattern:
    """Generate a matrix whose non-zero value locality is ≈ *locality*.

    Non-zero cache lines are placed in contiguous runs of
    ``run_length`` lines (see :func:`default_run_length`) at random
    positions of the dense layout; within each chosen line, ``locality``
    values (on average) are populated.  ``locality`` must lie in [1, 8]
    for 64B lines of doubles.  Randomness comes from the injected *rng*,
    else a ``random.Random`` seeded from *seed* (default:
    ``SystemConfig.rng_seed``).
    """
    if not 1.0 <= locality <= VALUES_PER_LINE:
        raise ValueError(f"locality must be in [1, {VALUES_PER_LINE}]")
    if nnz < 1:
        raise ValueError("need at least one non-zero")
    seed = resolve_seed(seed)
    rng = derive_rng(rng, seed)
    total_lines = (rows * cols) // VALUES_PER_LINE
    target_lines = max(1, round(nnz / locality))
    # The chosen lines must be able to hold every non-zero.
    target_lines = max(target_lines, -(-nnz // VALUES_PER_LINE))
    if target_lines > total_lines:
        raise ValueError("matrix too small for the requested nnz/locality")
    run = run_length if run_length is not None else default_run_length(locality)
    run = max(1, min(run, target_lines))
    # Sample non-overlapping runs of `run` consecutive lines.
    num_runs = (target_lines + run - 1) // run
    total_slots = total_lines // run
    if num_runs > total_slots:
        raise ValueError("matrix too small for the requested clustering")
    slots = rng.sample(range(total_slots), num_runs)
    chosen_lines = []
    for slot in slots:
        start = slot * run
        chosen_lines.extend(range(start, start + run))
    chosen_lines = chosen_lines[:target_lines]

    pattern = MatrixPattern(rows=rows, cols=cols,
                            name=name or f"L{locality:.2f}-seed{seed}")
    # Distribute nnz across chosen lines: start with one value per line
    # (every chosen line must be non-empty), then spread the remainder.
    per_line = [1] * target_lines
    remaining = nnz - target_lines
    while remaining > 0:
        index = rng.randrange(target_lines)
        if per_line[index] < VALUES_PER_LINE:
            per_line[index] += 1
            remaining -= 1
    for line, count in zip(chosen_lines, per_line):
        base = line * VALUES_PER_LINE
        offsets = rng.sample(range(VALUES_PER_LINE), count)
        for offset in offsets:
            flat = base + offset
            pattern.set(flat // cols, flat % cols,
                        rng.uniform(0.5, 2.0) * rng.choice((-1, 1)))
    return pattern


def banded(rows: int, cols: int, bandwidth: int, density: float = 1.0,
           seed: Optional[int] = None,
           rng: Optional[random.Random] = None) -> MatrixPattern:
    """A banded matrix (high L — non-zeros hug the diagonal)."""
    rng = derive_rng(rng, seed)
    pattern = MatrixPattern(rows=rows, cols=cols,
                            name=f"banded-bw{bandwidth}")
    for row in range(rows):
        low = max(0, row - bandwidth)
        high = min(cols, row + bandwidth + 1)
        for col in range(low, high):
            if rng.random() < density:
                pattern.set(row, col, rng.uniform(0.5, 2.0))
    return pattern


def block_diagonal(rows: int, cols: int, block: int,
                   seed: Optional[int] = None,
                   rng: Optional[random.Random] = None) -> MatrixPattern:
    """Dense blocks along the diagonal (FEM-style structure, high L)."""
    rng = derive_rng(rng, seed)
    pattern = MatrixPattern(rows=rows, cols=cols, name=f"blockdiag-{block}")
    for start in range(0, min(rows, cols), block):
        for row in range(start, min(start + block, rows)):
            for col in range(start, min(start + block, cols)):
                pattern.set(row, col, rng.uniform(0.5, 2.0))
    return pattern


def random_uniform(rows: int, cols: int, density: float,
                   seed: Optional[int] = None,
                   rng: Optional[random.Random] = None) -> MatrixPattern:
    """Uniformly random non-zeros (low L at low density)."""
    rng = derive_rng(rng, seed)
    pattern = MatrixPattern(rows=rows, cols=cols,
                            name=f"random-d{density:.3f}")
    target = max(1, round(rows * cols * density))
    placed = 0
    while placed < target:
        row = rng.randrange(rows)
        col = rng.randrange(cols)
        if pattern.get(row, col) == 0.0:
            pattern.set(row, col, rng.uniform(0.5, 2.0))
            placed += 1
    return pattern


def locality_sweep(count: int, rows: int = 256, cols: int = 256,
                   nnz: int = 4000,
                   seed: Optional[int] = None) -> List[MatrixPattern]:
    """A suite of *count* matrices sweeping L from ~1 to 8.

    Stands in for the paper's 87 UF matrices: Figure 10 sorts its x-axis
    by L, so a controlled sweep reproduces the same curve.  Matrix *i*
    is seeded ``seed + i`` (default base: ``SystemConfig.rng_seed + 7``,
    the suite's historical stream).
    """
    seed = resolve_seed(seed, stream=7)
    matrices = []
    for i in range(count):
        locality = 1.0 + (VALUES_PER_LINE - 1.0) * i / max(1, count - 1)
        matrices.append(generate_with_locality(
            rows, cols, nnz, locality, seed=seed + i,
            name=f"uf-like-{i:02d}"))
    return matrices


def realworld_like_suite(rows: int = 256, cols: int = 256,
                         seed: Optional[int] = None) -> List[MatrixPattern]:
    """A small structurally diverse suite (banded/block/random mixes).

    Entry *k* is seeded ``seed + k`` (default base:
    ``SystemConfig.rng_seed + 11``, the suite's historical stream).
    """
    seed = resolve_seed(seed, stream=11)
    nnz = max(16, rows * cols // 20)
    return [
        banded(rows, cols, bandwidth=3, seed=seed),
        banded(rows, cols, bandwidth=1, density=0.8, seed=seed + 1),
        block_diagonal(rows, cols, block=8, seed=seed + 2),
        block_diagonal(rows, cols, block=4, seed=seed + 3),
        random_uniform(rows, cols, density=0.01, seed=seed + 4),
        random_uniform(rows, cols, density=0.05, seed=seed + 5),
        generate_with_locality(rows, cols, nnz=nnz, locality=2.5, seed=seed + 6),
        generate_with_locality(rows, cols, nnz=nnz, locality=6.0, seed=seed + 7),
    ]
