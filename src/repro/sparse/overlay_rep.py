"""The overlay sparse-matrix representation (Section 5.2).

Every virtual page of the (virtually dense) matrix maps to one shared
**zero physical page**; each page's non-zero cache lines are installed in
its overlay.  Reads of zero lines hit the zero page; reads of non-zero
lines hit the overlay — the framework's access semantics give a dense
view of a compactly stored sparse matrix, for free.

SpMV uses the paper's *computation over overlays* model: software (with
hardware support) iterates only the overlay (non-zero) lines, skipping
zero lines entirely, and the hardware prefetches overlay lines because it
knows the overlay organisation.  Dynamic insertion of a non-zero is just
an overlaying write — no array shifting as in CSR.
"""

from __future__ import annotations

import struct
from typing import Optional

import numpy as np

from .pattern import MatrixPattern, VALUE_BYTES, VALUES_PER_LINE
from ..core.address import (LINE_SIZE, PAGE_SIZE, line_index,
                            overlay_page_number, page_number)
from ..core.oms import smallest_segment_for
from ..cpu.trace import MemoryAccess, Trace

#: FP instructions per overlay line processed (8 fused multiply-adds).
FMA_GAP_PER_LINE = VALUES_PER_LINE
#: Lines per page (import indirection kept local to avoid cycles).
LINES_PER_PAGE = PAGE_SIZE // LINE_SIZE


class OverlaySparseMatrix:
    """Sparse matrix stored as overlays over a shared zero page."""

    name = "overlay"

    def __init__(self, pattern: MatrixPattern):
        if pattern.cols % VALUES_PER_LINE:
            raise ValueError("column count must be a multiple of 8 "
                             "(lines must not cross rows)")
        self.pattern = pattern
        self.base_vaddr = 0
        self.zero_ppn: Optional[int] = None
        self._kernel = None
        self._process = None
        self._built = False

    # -- capacity -----------------------------------------------------------------

    @property
    def npages(self) -> int:
        raw = self.pattern.rows * self.pattern.cols * VALUE_BYTES
        return (raw + PAGE_SIZE - 1) // PAGE_SIZE

    def memory_bytes(self) -> int:
        """Overlay footprint under the paper's accounting: the cache
        lines actually present in the overlays (Section 2.3: "for each
        overlay, store only the cache lines that are actually present"),
        plus the single shared zero frame.  Segment-size quantisation is
        reported separately by :meth:`segment_allocated_bytes` and
        studied in the segment-ladder ablation."""
        return len(self.pattern.nonzero_lines()) * LINE_SIZE + PAGE_SIZE

    def segment_allocated_bytes(self) -> int:
        """Footprint including OMS segment rounding and metadata lines:
        the smallest segment of the 256B..4KB ladder per overlay page."""
        lines_by_page = {}
        for line in self.pattern.nonzero_lines():
            page = line // LINES_PER_PAGE
            lines_by_page[page] = lines_by_page.get(page, 0) + 1
        segment_total = sum(smallest_segment_for(count)
                            for count in lines_by_page.values())
        return segment_total + PAGE_SIZE  # + the zero page

    # -- placement ------------------------------------------------------------------

    def _line_bytes(self, flat_line: int) -> bytes:
        """Pack the 8 doubles of dense line *flat_line*."""
        cols = self.pattern.cols
        values = []
        base = flat_line * VALUES_PER_LINE
        for offset in range(VALUES_PER_LINE):
            flat = base + offset
            values.append(self.pattern.get(flat // cols, flat % cols))
        return struct.pack(f"<{VALUES_PER_LINE}d", *values)

    def build(self, kernel, process, base_vpn: int) -> None:
        """Map all pages to one zero frame and install non-zero overlays."""
        system = kernel.system
        self.zero_ppn = kernel.allocator.allocate()  # the shared zero page
        for page_index in range(self.npages):
            vpn = base_vpn + page_index
            system.map_page(process.asid, vpn, self.zero_ppn,
                            writable=False, cow=True)
            process.mappings[vpn] = self.zero_ppn
            kernel.frame_users.setdefault(self.zero_ppn, set()).add(
                (process.asid, vpn))
        for flat_line in self.pattern.nonzero_lines():
            vpn = base_vpn + flat_line // LINES_PER_PAGE
            line = flat_line % LINES_PER_PAGE
            system.install_overlay_line(process.asid, vpn, line,
                                        self._line_bytes(flat_line))
        self.base_vaddr = base_vpn * PAGE_SIZE
        self._kernel = kernel
        self._process = process
        self._built = True

    # -- SpMV -----------------------------------------------------------------------------

    def spmv_trace(self, x_vaddr: int, y_vaddr: int) -> Trace:
        """One y = A·x iteration touching only non-zero (overlay) lines."""
        trace = Trace()
        cols = self.pattern.cols
        lines_per_row = cols // VALUES_PER_LINE
        last_row = -1
        for flat_line in self.pattern.nonzero_lines():
            row = flat_line // lines_per_row
            line_in_row = flat_line % lines_per_row
            trace.append(MemoryAccess(
                vaddr=self.base_vaddr + flat_line * LINE_SIZE,
                gap=FMA_GAP_PER_LINE))
            trace.append(MemoryAccess(
                vaddr=x_vaddr + line_in_row * LINE_SIZE, gap=0))
            if row != last_row:
                trace.append(MemoryAccess(
                    vaddr=y_vaddr + row * VALUE_BYTES, write=True, gap=1))
                last_row = row
        return trace

    def multiply(self, x: np.ndarray) -> np.ndarray:
        """Functional reference result from the pattern."""
        return self.pattern.to_numpy() @ x

    def multiply_in_simulator(self, x: np.ndarray) -> np.ndarray:
        """SpMV computed from the *simulated memory itself*.

        Reads every non-zero line back through the framework's access
        semantics (overlay over zero page) and accumulates — the
        end-to-end data-fidelity check for the representation.
        """
        if not self._built:
            raise RuntimeError("matrix has not been built into a simulator")
        system = self._kernel.system
        asid = self._process.asid
        cols = self.pattern.cols
        y = np.zeros(self.pattern.rows)
        for flat_line in self.pattern.nonzero_lines():
            vaddr = self.base_vaddr + flat_line * LINE_SIZE
            raw = system.line_bytes(asid, page_number(vaddr),
                                    line_index(vaddr))
            values = struct.unpack(f"<{VALUES_PER_LINE}d", raw)
            base = flat_line * VALUES_PER_LINE
            for offset, value in enumerate(values):
                if value:
                    flat = base + offset
                    y[flat // cols] += value * x[flat % cols]
        return y

    # -- dynamic updates (Section 5.2's closing argument) -----------------------------------

    def insert(self, row: int, col: int, value: float) -> int:
        """Insert/update a non-zero; returns lines newly added to overlays.

        "Dynamically inserting non-zero values into a sparse matrix is as
        simple as moving a cache line to the overlay" — one overlay-line
        install, no array shifting.
        """
        if not self._built:
            raise RuntimeError("matrix has not been built into a simulator")
        self.pattern.set(row, col, value)
        flat = self.pattern.flat_index(row, col)
        flat_line = flat // VALUES_PER_LINE
        vpn = page_number(self.base_vaddr) + flat_line // LINES_PER_PAGE
        line = flat_line % LINES_PER_PAGE
        system = self._kernel.system
        entry = system.controller.omt.lookup(
            overlay_page_number(self._process.asid, vpn))
        newly_added = 0 if (entry is not None
                            and entry.obitvector.is_set(line)) else 1
        system.install_overlay_line(self._process.asid, vpn, line,
                                    self._line_bytes(flat_line))
        return newly_added
