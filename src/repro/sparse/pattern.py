"""Sparse-matrix patterns: the substrate shared by every representation.

A :class:`MatrixPattern` stores the non-zero structure and values of a
sparse matrix plus the geometry helpers the paper's analysis needs —
most importantly the **non-zero value locality** metric ``L`` (Section
5.2): the average number of non-zero values per non-zero cache line,
assuming the row-major dense layout of 8-byte doubles that the overlay
representation uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

import numpy as np

#: Bytes per matrix element (double-precision floating point).
VALUE_BYTES = 8
#: Values per 64B cache line.
VALUES_PER_LINE = 64 // VALUE_BYTES


@dataclass
class MatrixPattern:
    """A sparse matrix as shape + coordinate/value maps."""

    rows: int
    cols: int
    #: row -> {col: value}
    data: Dict[int, Dict[int, float]] = field(default_factory=dict)
    name: str = "synthetic"

    def set(self, row: int, col: int, value: float) -> None:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise IndexError(f"({row}, {col}) outside {self.rows}x{self.cols}")
        if value == 0.0:
            row_data = self.data.get(row)
            if row_data is not None:
                row_data.pop(col, None)
                if not row_data:
                    del self.data[row]
            return
        self.data.setdefault(row, {})[col] = value

    def get(self, row: int, col: int) -> float:
        return self.data.get(row, {}).get(col, 0.0)

    def entries(self) -> Iterator[Tuple[int, int, float]]:
        """Yield (row, col, value) in row-major order."""
        for row in sorted(self.data):
            cols = self.data[row]
            for col in sorted(cols):
                yield row, col, cols[col]

    # -- structure metrics ---------------------------------------------------------

    @property
    def nnz(self) -> int:
        return sum(len(cols) for cols in self.data.values())

    def flat_index(self, row: int, col: int) -> int:
        """Element index in the row-major dense layout."""
        return row * self.cols + col

    def nonzero_blocks(self, block_bytes: int = 64) -> int:
        """Number of *block_bytes*-sized blocks of the dense layout that
        contain at least one non-zero value.

        With ``block_bytes=64`` this is the non-zero cache-line count; with
        4096 it is the non-zero page count (the Figure 11 sweep).
        """
        values_per_block = max(1, block_bytes // VALUE_BYTES)
        blocks = set()
        for row, col, _ in self.entries():
            blocks.add(self.flat_index(row, col) // values_per_block)
        return len(blocks)

    def nonzero_lines(self) -> List[int]:
        """Sorted flat line indices of all non-zero 64B lines."""
        lines = set()
        for row, col, _ in self.entries():
            lines.add(self.flat_index(row, col) // VALUES_PER_LINE)
        return sorted(lines)

    @property
    def locality(self) -> float:
        """The paper's ``L``: average non-zeros per non-zero cache line."""
        lines = self.nonzero_blocks(64)
        return self.nnz / lines if lines else 0.0

    @property
    def density(self) -> float:
        total = self.rows * self.cols
        return self.nnz / total if total else 0.0

    # -- conversions (correctness references) ------------------------------------------

    def to_numpy(self) -> np.ndarray:
        dense = np.zeros((self.rows, self.cols))
        for row, col, value in self.entries():
            dense[row, col] = value
        return dense

    def to_scipy(self):
        """Return a scipy.sparse CSR matrix (reference implementation)."""
        from scipy.sparse import csr_matrix
        rows, cols, values = [], [], []
        for row, col, value in self.entries():
            rows.append(row)
            cols.append(col)
            values.append(value)
        return csr_matrix((values, (rows, cols)),
                          shape=(self.rows, self.cols))

    @classmethod
    def from_numpy(cls, dense: np.ndarray, name: str = "from_numpy") -> "MatrixPattern":
        pattern = cls(rows=dense.shape[0], cols=dense.shape[1], name=name)
        for row, col in zip(*np.nonzero(dense)):
            pattern.set(int(row), int(col), float(dense[row, col]))
        return pattern

    def __repr__(self) -> str:
        return (f"MatrixPattern({self.name!r}, {self.rows}x{self.cols}, "
                f"nnz={self.nnz}, L={self.locality:.2f})")
