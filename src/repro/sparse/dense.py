"""Dense-matrix representation (the paper's baseline in Section 5.2's
sparsity sweep).

The matrix is laid out row-major as 8-byte doubles in simulated memory;
every page is backed by a private physical frame, and SpMV touches every
cache line whether or not it holds non-zero data.
"""

from __future__ import annotations

import struct
import numpy as np

from .pattern import MatrixPattern, VALUE_BYTES, VALUES_PER_LINE
from ..core.address import LINE_SIZE, PAGE_SIZE
from ..cpu.trace import MemoryAccess, Trace

#: Instructions of FP work per dense cache line (8 fused multiply-adds).
FMA_GAP_PER_LINE = VALUES_PER_LINE


class DenseMatrix:
    """Row-major dense layout of a :class:`MatrixPattern`."""

    name = "dense"

    def __init__(self, pattern: MatrixPattern):
        if pattern.cols % VALUES_PER_LINE:
            raise ValueError("column count must be a multiple of 8 "
                             "(lines must not cross rows)")
        self.pattern = pattern
        self.base_vaddr = 0
        self._built = False

    # -- capacity --------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Full dense footprint, rounded up to whole pages."""
        raw = self.pattern.rows * self.pattern.cols * VALUE_BYTES
        return ((raw + PAGE_SIZE - 1) // PAGE_SIZE) * PAGE_SIZE

    @property
    def total_lines(self) -> int:
        return (self.pattern.rows * self.pattern.cols) // VALUES_PER_LINE

    # -- placement into simulated memory --------------------------------------------

    def build(self, kernel, process, base_vpn: int) -> None:
        """Map the dense matrix at *base_vpn* and write its bytes."""
        npages = self.memory_bytes() // PAGE_SIZE
        frames = kernel.mmap(process, base_vpn, npages)
        dense = self.pattern.to_numpy()
        flat = dense.reshape(-1)
        for page_index, ppn in enumerate(frames):
            start = page_index * (PAGE_SIZE // VALUE_BYTES)
            chunk = flat[start:start + PAGE_SIZE // VALUE_BYTES]
            raw = struct.pack(f"<{len(chunk)}d", *chunk)
            raw += bytes(PAGE_SIZE - len(raw))
            kernel.system.main_memory.write_page(ppn, raw)
        self.base_vaddr = base_vpn * PAGE_SIZE
        self._built = True

    # -- SpMV ------------------------------------------------------------------------

    def spmv_trace(self, x_vaddr: int, y_vaddr: int) -> Trace:
        """One y = A·x iteration: every matrix line is read."""
        trace = Trace()
        cols = self.pattern.cols
        lines_per_row = cols // VALUES_PER_LINE
        for row in range(self.pattern.rows):
            for line_in_row in range(lines_per_row):
                flat_line = row * lines_per_row + line_in_row
                trace.append(MemoryAccess(
                    vaddr=self.base_vaddr + flat_line * LINE_SIZE,
                    gap=FMA_GAP_PER_LINE))
                # The x sub-vector for these 8 columns is one line.
                trace.append(MemoryAccess(
                    vaddr=x_vaddr + line_in_row * LINE_SIZE, gap=0))
            trace.append(MemoryAccess(
                vaddr=y_vaddr + row * VALUE_BYTES, write=True, gap=1))
        return trace

    def multiply(self, x: np.ndarray) -> np.ndarray:
        """Functional reference result."""
        return self.pattern.to_numpy() @ x
