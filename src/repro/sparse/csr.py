"""Compressed Sparse Row (CSR) — the state-of-the-art software baseline
of Section 5.2 [26].

CSR keeps three arrays: ``values`` (8B doubles), ``col_idx`` (4B ints)
and ``row_ptr`` (4B ints).  Its costs, as the paper describes them: about
1.5x extra metadata bytes per non-zero (12B stored per 8B value), and an
extra indexed load per non-zero to gather ``x[col_idx[i]]`` during SpMV.
Dynamic insertion requires shifting both arrays — the operation
:meth:`CSRMatrix.insert_cost_elements` quantifies and the overlay
representation avoids.
"""

from __future__ import annotations

import struct
from typing import List

import numpy as np

from .pattern import MatrixPattern, VALUE_BYTES
from ..core.address import PAGE_SIZE
from ..cpu.trace import MemoryAccess, Trace

INDEX_BYTES = 4
#: Loop/indexing instructions per non-zero in the CSR SpMV inner loop.
CSR_GAP_PER_NNZ = 4


class CSRMatrix:
    """CSR layout of a :class:`MatrixPattern` in simulated memory."""

    name = "csr"

    def __init__(self, pattern: MatrixPattern):
        self.pattern = pattern
        self.values: List[float] = []
        self.col_idx: List[int] = []
        self.row_ptr: List[int] = [0]
        for row in range(pattern.rows):
            cols = pattern.data.get(row, {})
            for col in sorted(cols):
                self.values.append(cols[col])
                self.col_idx.append(col)
            self.row_ptr.append(len(self.values))
        self.values_vaddr = 0
        self.col_vaddr = 0
        self.rowptr_vaddr = 0

    # -- capacity ----------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Exact CSR footprint: 12B per non-zero + 4B per row pointer."""
        return (len(self.values) * VALUE_BYTES
                + len(self.col_idx) * INDEX_BYTES
                + len(self.row_ptr) * INDEX_BYTES)

    # -- placement -----------------------------------------------------------------

    def _write_region(self, kernel, process, base_vpn: int,
                      raw: bytes) -> int:
        npages = (len(raw) + PAGE_SIZE - 1) // PAGE_SIZE
        frames = kernel.mmap(process, base_vpn, npages)
        for page_index, ppn in enumerate(frames):
            chunk = raw[page_index * PAGE_SIZE:(page_index + 1) * PAGE_SIZE]
            kernel.system.main_memory.write_page(
                ppn, chunk + bytes(PAGE_SIZE - len(chunk)))
        return npages

    def build(self, kernel, process, base_vpn: int) -> None:
        """Lay the three arrays out in consecutive virtual regions."""
        values_raw = struct.pack(f"<{len(self.values)}d", *self.values)
        col_raw = struct.pack(f"<{len(self.col_idx)}i", *self.col_idx)
        rowptr_raw = struct.pack(f"<{len(self.row_ptr)}i", *self.row_ptr)

        vpn = base_vpn
        self.values_vaddr = vpn * PAGE_SIZE
        vpn += self._write_region(kernel, process, vpn, values_raw)
        self.col_vaddr = vpn * PAGE_SIZE
        vpn += self._write_region(kernel, process, vpn, col_raw)
        self.rowptr_vaddr = vpn * PAGE_SIZE
        vpn += self._write_region(kernel, process, vpn, rowptr_raw)

    # -- SpMV --------------------------------------------------------------------------

    def spmv_trace(self, x_vaddr: int, y_vaddr: int) -> Trace:
        """One y = A·x iteration over the CSR arrays.

        Per non-zero: a sequential value load, a sequential column-index
        load, and the indexed gather of ``x[col]`` the paper charges CSR
        for.  Per row: a row-pointer load and a store of ``y[row]``.
        """
        trace = Trace()
        for row in range(self.pattern.rows):
            trace.append(MemoryAccess(
                vaddr=self.rowptr_vaddr + row * INDEX_BYTES, size=INDEX_BYTES,
                gap=1))
            start, end = self.row_ptr[row], self.row_ptr[row + 1]
            for i in range(start, end):
                trace.append(MemoryAccess(
                    vaddr=self.values_vaddr + i * VALUE_BYTES,
                    gap=CSR_GAP_PER_NNZ))
                trace.append(MemoryAccess(
                    vaddr=self.col_vaddr + i * INDEX_BYTES, size=INDEX_BYTES,
                    gap=0))
                trace.append(MemoryAccess(
                    vaddr=x_vaddr + self.col_idx[i] * VALUE_BYTES, gap=0))
            if end > start:
                trace.append(MemoryAccess(
                    vaddr=y_vaddr + row * VALUE_BYTES, write=True, gap=1))
        return trace

    def multiply(self, x: np.ndarray) -> np.ndarray:
        """Functional SpMV over the CSR arrays themselves."""
        y = np.zeros(self.pattern.rows)
        for row in range(self.pattern.rows):
            acc = 0.0
            for i in range(self.row_ptr[row], self.row_ptr[row + 1]):
                acc += self.values[i] * x[self.col_idx[i]]
            y[row] = acc
        return y

    # -- dynamic updates (the cost overlays avoid) ------------------------------------------

    def insert_cost_elements(self, row: int) -> int:
        """Array elements that must shift to insert a non-zero in *row*.

        Every value and column index after the insertion point moves, and
        every later row pointer is incremented — the "costly and complex"
        dynamic-update behaviour of software representations (Section 5.2).
        """
        insert_at = self.row_ptr[row + 1]
        shifted = len(self.values) - insert_at
        rowptr_updates = len(self.row_ptr) - (row + 1)
        return 2 * shifted + rowptr_updates

    def insert(self, row: int, col: int, value: float) -> int:
        """Insert a non-zero, returning the number of elements moved."""
        cost = self.insert_cost_elements(row)
        insert_at = self.row_ptr[row + 1]
        for i in range(self.row_ptr[row], self.row_ptr[row + 1]):
            if self.col_idx[i] == col:
                self.values[i] = value
                return 0
            if self.col_idx[i] > col:
                insert_at = i
                break
        self.values.insert(insert_at, value)
        self.col_idx.insert(insert_at, col)
        for r in range(row + 1, len(self.row_ptr)):
            self.row_ptr[r] += 1
        self.pattern.set(row, col, value)
        return cost
