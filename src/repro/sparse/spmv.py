"""SpMV execution harness: run one y = A·x iteration of any
representation on a fresh simulated machine and report cycles + memory.

This is the engine behind Figure 10 (overlay vs CSR across matrices
sorted by L) and the Section 5.2 sparsity sweep (overlay vs dense).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .csr import CSRMatrix
from .dense import DenseMatrix
from .overlay_rep import OverlaySparseMatrix
from .pattern import MatrixPattern, VALUE_BYTES
from ..core.address import PAGE_SIZE
from ..cpu.core import Core, CoreStats
from ..osmodel.kernel import Kernel

#: Virtual page where the matrix region starts.
MATRIX_BASE_VPN = 0x1000
#: Virtual page where the x vector starts (far from the matrix).
X_BASE_VPN = 0x200000
#: Virtual page where the y vector starts.
Y_BASE_VPN = 0x280000

REPRESENTATIONS = {
    "dense": DenseMatrix,
    "csr": CSRMatrix,
    "overlay": OverlaySparseMatrix,
}


@dataclass
class SpMVResult:
    """Outcome of one simulated SpMV iteration."""

    representation: str
    matrix: str
    cycles: int
    instructions: int
    memory_bytes: int
    locality: float
    nnz: int
    y: Optional[np.ndarray] = None

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


def _build_vectors(kernel: Kernel, process, cols: int, rows: int,
                   x: np.ndarray) -> None:
    """Map and fill the x (input) and y (output) vector regions."""
    x_pages = (cols * VALUE_BYTES + PAGE_SIZE - 1) // PAGE_SIZE
    y_pages = (rows * VALUE_BYTES + PAGE_SIZE - 1) // PAGE_SIZE
    x_frames = kernel.mmap(process, X_BASE_VPN, x_pages)
    kernel.mmap(process, Y_BASE_VPN, y_pages)
    raw = struct.pack(f"<{cols}d", *x)
    for page_index, ppn in enumerate(x_frames):
        chunk = raw[page_index * PAGE_SIZE:(page_index + 1) * PAGE_SIZE]
        kernel.system.main_memory.write_page(
            ppn, chunk + bytes(PAGE_SIZE - len(chunk)))


def run_spmv(pattern: MatrixPattern, representation: str,
             x: Optional[np.ndarray] = None,
             check_result: bool = False,
             omt_cache_entries: int = 64) -> SpMVResult:
    """Simulate one SpMV iteration of *pattern* under *representation*.

    A fresh machine is built per run so representations never share
    cache state.  With ``check_result`` the representation's functional
    product is attached for verification.  ``omt_cache_entries``
    parameterises the memory controller for the OMT-cache ablation.
    """
    rep_cls = REPRESENTATIONS.get(representation)
    if rep_cls is None:
        raise ValueError(f"unknown representation {representation!r}; "
                         f"choose from {sorted(REPRESENTATIONS)}")
    if x is None:
        x = np.ones(pattern.cols)

    kernel = Kernel(omt_cache_entries=omt_cache_entries)
    process = kernel.create_process()
    rep = rep_cls(pattern)
    rep.build(kernel, process, MATRIX_BASE_VPN)
    _build_vectors(kernel, process, pattern.cols, pattern.rows, x)

    trace = rep.spmv_trace(X_BASE_VPN * PAGE_SIZE, Y_BASE_VPN * PAGE_SIZE)
    core = Core(kernel.system, process.asid)
    stats: CoreStats = core.run(trace)

    return SpMVResult(
        representation=representation,
        matrix=pattern.name,
        cycles=stats.cycles,
        instructions=stats.instructions,
        memory_bytes=rep.memory_bytes(),
        locality=pattern.locality,
        nnz=pattern.nnz,
        y=rep.multiply(x) if check_result else None)


def ideal_memory_bytes(pattern: MatrixPattern) -> int:
    """The paper's "Ideal": bytes for the non-zero values alone."""
    return pattern.nnz * VALUE_BYTES
