"""Architectural invariant checking over a live :class:`OverlaySystem`.

The detector half of the robustness layer: while the fault injector
(:mod:`repro.robust.faults`) breaks the machine, the
:class:`InvariantChecker` sweeps the architectural state the paper's
correctness argument rests on and reports every rule it finds violated.
The four rules, each traceable to the paper:

``overlay-exclusivity``
    Section 4.1's fundamental rule — a cache line's authoritative data
    lives in the overlay *or* the physical page, never both.  Violated
    when the OMT maps a line to the overlay while a *dirty* physical
    copy is still cached (a store landed on pre-remap data), and in the
    dual direction when a line is dirty under the overlay tag without
    its OMT bit (its data became unreachable — a dropped *overlaying
    read exclusive*).  Clean copies under the wrong tag are tolerated:
    the prefetcher and copy-on-write frame sharers create them
    legitimately, and reads never consume them.

``omt-page-table``
    Sections 4.2/4.3 — the OMT shadows the page table.  Violated by an
    OMT entry whose page is not mapped (or has overlays disabled) while
    it still claims overlay lines, and by a set OBitVector bit with no
    backing data anywhere — no cached overlay line and no segment slot —
    which would read as fabricated zeroes.

``tlb-coherence``
    Section 4.3.3 — every TLB's private OBitVector copy must equal the
    authoritative OMT vector once the coherence messages have done their
    job (the whole point of the *overlaying read exclusive* message).

``oms-free-list``
    Section 4.4.3 — the Overlay Memory Store's segmented free store:
    no base on two free lists, no free range overlapping a live
    segment, and every live segment's slot pointers internally
    consistent (pointer in range, pointing at a populated slot, no two
    lines sharing a slot).

Violations are reported three ways: the returned :class:`Violation`
list, ``invariants.*`` counters in the system's stats tree (the checker
is a :class:`~repro.engine.Component` child of the system), and
``robust``-category trace events when a tracer is armed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core.address import (LINES_PER_PAGE, decompose_overlay_address,
                            line_tag_of, overlay_page_number, page_address)
from ..engine.component import Component

#: The rule identifiers, in sweep order.
RULES = ("overlay-exclusivity", "omt-page-table", "tlb-coherence",
         "oms-free-list")


@dataclass(frozen=True)
class Violation:
    """One invariant breach at one location."""

    rule: str
    location: str
    detail: str

    def to_dict(self) -> Dict[str, str]:
        return {"rule": self.rule, "location": self.location,
                "detail": self.detail}


@dataclass
class InvariantStats:
    checks: int = 0
    violations: int = 0
    overlay_exclusivity_violations: int = 0
    omt_page_table_violations: int = 0
    tlb_coherence_violations: int = 0
    oms_free_list_violations: int = 0
    repairs: int = 0


class InvariantChecker(Component):
    """Periodic whole-machine consistency sweep.

    ``check_interval`` is the cadence in simulated cycles for
    :meth:`maybe_check`: a sweep runs when at least that many cycles
    passed since the previous one (0 = sweep on every call).  Checks
    read state through uncharged paths only — a sweep never moves the
    simulated clock or perturbs any timing statistic, so arming the
    checker cannot change a run's performance results.
    """

    def __init__(self, system, check_interval: int = 0,
                 name: str = "invariants"):
        super().__init__(name, parent=system)
        if check_interval < 0:
            raise ValueError("check interval cannot be negative")
        self.system = system
        self.check_interval = check_interval
        self.stats = InvariantStats()
        self.stats_scope.own_block(self.stats)
        self._last_check: Optional[int] = None

    # -- cadence -------------------------------------------------------------

    def maybe_check(self) -> List[Violation]:
        """Sweep if the configured cadence has elapsed (else no-op)."""
        now = self.system.clock
        if (self._last_check is not None
                and now - self._last_check < self.check_interval):
            return []
        return self.check_all()

    def check_all(self) -> List[Violation]:
        """Run every rule; record, trace and return the violations."""
        self._last_check = self.system.clock
        self.stats.checks += 1
        violations: List[Violation] = []
        violations += self.check_overlay_exclusivity()
        violations += self.check_omt_page_table()
        violations += self.check_tlb_coherence()
        violations += self.check_oms_free_lists()
        for violation in violations:
            self.trace_event("robust", "violation", violation.to_dict())
        return violations

    # -- the four rules ------------------------------------------------------

    def check_overlay_exclusivity(self) -> List[Violation]:
        """Section 4.1: overlay XOR physical page, per line.

        Both directions test for a *dirty* copy under the wrong tag.
        Clean copies under the wrong tag are architecturally harmless —
        reads route through ``_target_tag`` so they are never consumed,
        and the prefetcher (or a copy-on-write sharer of the frame)
        legitimately leaves them behind.  A dirty copy, by contrast,
        means a store landed on the side the mapping says is dead:
        pre-remap data shadowing the overlay, or an overlay write whose
        *overlaying read exclusive* message was lost.
        """
        found: List[Violation] = []
        hierarchy = self.system.hierarchy
        for asid, vpn, pte in self._mapped_pages():
            opn = overlay_page_number(asid, vpn)
            entry = self.system.controller.omt.lookup(opn)
            for line in range(LINES_PER_PAGE):
                in_overlay = (entry is not None
                              and entry.obitvector.is_set(line))
                if (in_overlay and pte.overlays_enabled
                        and hierarchy.dirty_data(
                            line_tag_of(pte.ppn, line)) is not None):
                    found.append(Violation(
                        "overlay-exclusivity", self._page(asid, vpn),
                        f"line {line} mapped to the overlay but a dirty "
                        f"physical copy is still cached"))
                elif (not in_overlay and hierarchy.dirty_data(
                        line_tag_of(opn, line)) is not None):
                    found.append(Violation(
                        "overlay-exclusivity", self._page(asid, vpn),
                        f"line {line} dirty under the overlay tag "
                        f"without its OBitVector bit"))
        self._count(found, "overlay_exclusivity_violations")
        return found

    def check_omt_page_table(self) -> List[Violation]:
        """Sections 4.2/4.3: the OMT shadows the page table."""
        found: List[Violation] = []
        for opn, entry in self.system.controller.omt.items():
            asid, vaddr = decompose_overlay_address(page_address(opn))
            vpn = vaddr >> 12
            table = self.system.page_tables.get(asid)
            pte = table.entry(vpn) if table is not None else None
            if pte is None:
                if not entry.obitvector.is_empty():
                    found.append(Violation(
                        "omt-page-table", self._page(asid, vpn),
                        f"OMT entry holds {entry.obitvector.count()} "
                        f"overlay line(s) for an unmapped page"))
                continue
            if not pte.overlays_enabled and not entry.obitvector.is_empty():
                found.append(Violation(
                    "omt-page-table", self._page(asid, vpn),
                    "OMT entry holds overlay lines for a page with "
                    "overlays disabled"))
            for line in entry.obitvector.lines():
                cached = self.system.hierarchy.lookup_data(
                    line_tag_of(opn, line)) is not None
                stored = (entry.segment is not None
                          and entry.segment.has_line(line))
                if not cached and not stored:
                    found.append(Violation(
                        "omt-page-table", self._page(asid, vpn),
                        f"OBitVector bit {line} set but no overlay data "
                        f"exists (not cached, not in a segment)"))
            if entry.segment is not None:
                for line in entry.segment.mapped_lines():
                    if not entry.obitvector.is_set(line):
                        found.append(Violation(
                            "omt-page-table", self._page(asid, vpn),
                            f"segment holds data for line {line} but "
                            f"its OBitVector bit is clear"))
        self._count(found, "omt_page_table_violations")
        return found

    def check_tlb_coherence(self) -> List[Violation]:
        """Section 4.3.3: TLB OBitVector copies match the OMT."""
        found: List[Violation] = []
        omt = self.system.controller.omt
        for index, tlb in enumerate(self.system.tlbs):
            for entry in tlb.cached_entries():
                if not entry.pte.overlays_enabled:
                    continue
                opn = overlay_page_number(entry.asid, entry.vpn)
                authoritative = omt.lookup(opn)
                truth = (authoritative.obitvector.raw
                         if authoritative is not None else 0)
                if entry.obitvector.raw != truth:
                    diff = entry.obitvector.raw ^ truth
                    found.append(Violation(
                        "tlb-coherence",
                        self._page(entry.asid, entry.vpn),
                        f"tlb{index} copy differs from the OMT vector "
                        f"(xor mask {diff:#018x})"))
        self._count(found, "tlb_coherence_violations")
        return found

    def check_oms_free_lists(self) -> List[Violation]:
        """Section 4.4.3: free-store and segment-metadata integrity."""
        found: List[Violation] = []
        oms = self.system.oms
        free_ranges: List[Tuple[int, int, int]] = []
        seen: Dict[int, int] = {}
        for size, bases in sorted(oms.free_list_snapshot().items()):
            for base in bases:
                if base in seen:
                    found.append(Violation(
                        "oms-free-list", f"segment@{base:#x}",
                        f"base on both the {seen[base]}B and the "
                        f"{size}B free list"))
                seen[base] = size
                free_ranges.append((base, base + size, size))
        live = oms.live_segments()
        live_ranges = [(seg.base, seg.base + seg.size) for seg in live]
        for start, end, size in free_ranges:
            for lstart, lend in live_ranges:
                if start < lend and lstart < end:
                    found.append(Violation(
                        "oms-free-list", f"segment@{start:#x}",
                        f"free {size}B range overlaps the live segment "
                        f"at {lstart:#x}"))
        for segment in live:
            used: Dict[int, int] = {}
            for line, slot in enumerate(segment.slot_pointers):
                if slot is None:
                    continue
                if not segment.is_direct_mapped and slot >= segment.capacity:
                    found.append(Violation(
                        "oms-free-list", f"segment@{segment.base:#x}",
                        f"line {line} points at slot {slot}, beyond "
                        f"capacity {segment.capacity}"))
                    continue
                if slot in used:
                    found.append(Violation(
                        "oms-free-list", f"segment@{segment.base:#x}",
                        f"lines {used[slot]} and {line} share slot "
                        f"{slot}"))
                used[slot] = line
                if slot not in segment.slots:
                    found.append(Violation(
                        "oms-free-list", f"segment@{segment.base:#x}",
                        f"line {line} points at slot {slot}, which "
                        f"holds no data"))
        self._count(found, "oms_free_list_violations")
        return found

    # -- recovery ------------------------------------------------------------

    def repair(self, violations: List[Violation]) -> int:
        """Recover every page implicated in *violations*; return latency.

        Mapping-level rules route through
        :meth:`~repro.core.framework.OverlaySystem.recover_overlay_mapping`
        (shootdown + OMT re-walk + reconciliation).  OMS free-list damage
        has no architectural recovery short of declaring the overlay
        subsystem faulted — those violations are left to the caller's
        escalation policy.
        """
        latency = 0
        repaired = set()
        for violation in violations:
            if violation.rule == "oms-free-list":
                continue
            location = violation.location
            if not location.startswith("page("):
                continue
            asid, vpn = self._parse_page(location)
            if (asid, vpn) in repaired:
                continue
            repaired.add((asid, vpn))
            latency += self.system.recover_overlay_mapping(asid, vpn)
            self.stats.repairs += 1
        return latency

    # -- helpers -------------------------------------------------------------

    def _mapped_pages(self):
        """Every mapped 4KB page, deterministically ordered."""
        for asid in sorted(self.system.page_tables):
            table = self.system.page_tables[asid]
            for vpn in sorted(table.mapped_vpns()):
                pte = table.entry(vpn)
                if pte is not None:
                    yield asid, vpn, pte

    @staticmethod
    def _page(asid: int, vpn: int) -> str:
        return f"page({asid},{vpn:#x})"

    @staticmethod
    def _parse_page(location: str) -> Tuple[int, int]:
        asid, vpn = location[len("page("):-1].split(",")
        return int(asid), int(vpn, 16)

    def _count(self, found: List[Violation], counter: str) -> None:
        if found:
            self.stats.violations += len(found)
            setattr(self.stats, counter,
                    getattr(self.stats, counter) + len(found))
