"""Deterministic fault injection — the plan, the injector, the session.

The robustness layer's fault model: a :class:`FaultPlan` describes *what
can go wrong* (per-site fault rates plus the DRAM ECC model) and a
:class:`FaultInjector` — the :class:`~repro.engine.tracing.FaultHook`
implementation — decides *when it does*, off a ``random.Random`` derived
from :attr:`~repro.config.SystemConfig.rng_seed` through
:func:`~repro.engine.rng.derive_rng`.  Two runs with the same seed, the
same plan and the same workload inject byte-identical fault sequences,
which is what lets the campaign runner (:mod:`repro.robust.campaign`)
classify outcomes against a golden run.

Fault taxonomy (one rate knob per injection site):

========================  ====================================================
``omt_flip_rate``         flip one OBitVector bit of an entry coming out of an
                          OMT walk (``core/omt.py``) — *authoritative* mapping
                          state corrupted
``segment_pointer_rate``  corrupt one slot pointer of the walked entry's OMS
                          segment metadata (Figure 7) — later reads of that
                          line crash into :class:`~repro.core.oms.OMSError`
                          territory
``obitvector_flip_rate``  flip one bit of a *copied* vector
                          (``core/obitvector.py``) — a snapshot in flight to a
                          TLB or OMT-cache fill corrupted, authority intact
``tlb_fill_flip_rate``    flip one bit of a freshly installed TLB entry
                          (``core/tlb.py``) — one core's private copy diverges
``coherence_drop_rate``   drop an *overlaying read exclusive* or commit
                          broadcast (``core/coherence.py``) — remap never
                          becomes globally visible
``coherence_delay_rate``  delay a coherence broadcast by
                          ``config.fault_coherence_delay_cycles``
``dram_error_rate``       transient bit error on a DRAM line read
                          (``mem/dram.py``), resolved by the ECC model
========================  ====================================================

ECC models (``ecc``): ``"secded"`` corrects the error in the controller
pipeline and charges ``config.ecc_correction_latency``; ``"parity"``
detects it and retries the read, charging ``config.ecc_retry_latency``;
``"none"`` lets the flipped bit through into the backing store — a real
silent corruption the architectural checks may or may not catch.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Any, Dict, Iterator, Optional

from ..config import DEFAULT_CONFIG, SystemConfig
from ..core.address import LINES_PER_PAGE, PAGE_SIZE
from ..engine.rng import derive_rng
from ..engine.tracing import FaultHook, install_faults, uninstall_faults

#: Valid DRAM error-correction models, strongest first.
ECC_MODES = ("secded", "parity", "none")

#: Base RNG stream for fault plans (see :mod:`repro.engine.rng`); far from
#: every workload stream so arming faults never perturbs workload inputs.
FAULT_STREAM = 9000


@dataclass(frozen=True)
class FaultPlan:
    """What can go wrong, and how often.  Immutable and serialisable.

    All rates are per-opportunity probabilities in ``[0, 1]``; a plan
    with every rate at zero is valid and injects nothing (the campaign
    runner's golden configuration).  ``seed`` overrides the config-derived
    stream seed; ``stream`` offsets it so independent campaigns stay
    decorrelated.
    """

    omt_flip_rate: float = 0.0
    segment_pointer_rate: float = 0.0
    obitvector_flip_rate: float = 0.0
    tlb_fill_flip_rate: float = 0.0
    coherence_drop_rate: float = 0.0
    coherence_delay_rate: float = 0.0
    dram_error_rate: float = 0.0
    ecc: str = "secded"
    seed: Optional[int] = None
    stream: int = FAULT_STREAM

    def __post_init__(self):
        if self.ecc not in ECC_MODES:
            raise ValueError(
                f"unknown ECC model {self.ecc!r}; pick one of {ECC_MODES}")
        for name, value in self.rates().items():
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{name} must be a probability in [0, 1], got {value}")

    def rates(self) -> Dict[str, float]:
        """Every rate field by name (serialisation and validation)."""
        return {spec.name: getattr(self, spec.name)
                for spec in fields(self) if spec.name.endswith("_rate")}

    def any_armed(self) -> bool:
        """True when at least one site can fire."""
        return any(value > 0.0 for value in self.rates().values())

    def scaled(self, factor: float) -> "FaultPlan":
        """A plan with every rate multiplied by *factor* (rate sweeps)."""
        changes = {name: min(1.0, value * factor)
                   for name, value in self.rates().items()}
        return FaultPlan(ecc=self.ecc, seed=self.seed, stream=self.stream,
                         **changes)

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = dict(sorted(self.rates().items()))
        doc["ecc"] = self.ecc
        doc["stream"] = self.stream
        if self.seed is not None:
            doc["seed"] = self.seed
        return doc


@dataclass
class FaultStats:
    """Counts of faults actually injected (not opportunities)."""

    omt_bit_flips: int = 0
    segment_pointer_corruptions: int = 0
    obitvector_copy_flips: int = 0
    tlb_fill_flips: int = 0
    coherence_drops: int = 0
    coherence_delays: int = 0
    dram_errors: int = 0
    ecc_corrections: int = 0
    ecc_retries: int = 0
    silent_bit_errors: int = 0

    @property
    def total_injected(self) -> int:
        return (self.omt_bit_flips + self.segment_pointer_corruptions
                + self.obitvector_copy_flips + self.tlb_fill_flips
                + self.coherence_drops + self.coherence_delays
                + self.dram_errors)

    def to_dict(self) -> Dict[str, int]:
        doc = {spec.name: getattr(self, spec.name) for spec in fields(self)}
        doc["total_injected"] = self.total_injected
        return doc


class FaultInjector(FaultHook):
    """Executes a :class:`FaultPlan` deterministically at every hook site.

    ``main_memory`` (the system's byte-accurate backing store) is only
    needed for the ``ecc="none"`` model, where an uncorrected DRAM error
    must actually land in the stored bytes; without it the error is
    counted but has no architectural effect.
    """

    def __init__(self, plan: FaultPlan,
                 config: Optional[SystemConfig] = None,
                 main_memory=None):
        self.plan = plan
        self.config = config or DEFAULT_CONFIG
        self.main_memory = main_memory
        self.rng = derive_rng(None, plan.seed, stream=plan.stream,
                              config=self.config)
        self.stats = FaultStats()

    # -- site callbacks (FaultHook interface) -------------------------------

    def on_omt_walk(self, entry) -> None:
        rng = self.rng
        if rng.random() < self.plan.omt_flip_rate:
            line = rng.randrange(LINES_PER_PAGE)
            vector = entry.obitvector
            if vector.is_set(line):
                vector.clear(line)
            else:
                vector.set(line)
            self.stats.omt_bit_flips += 1
        if (self.plan.segment_pointer_rate
                and entry.segment is not None
                and not entry.segment.is_direct_mapped
                and rng.random() < self.plan.segment_pointer_rate):
            mapped = entry.segment.mapped_lines()
            if mapped:
                # Point one line's slot pointer at a slot holding no
                # data: the next read of that line dies in the segment.
                line = mapped[rng.randrange(len(mapped))]
                entry.segment.slot_pointers[line] = entry.segment.capacity
                self.stats.segment_pointer_corruptions += 1

    def on_obitvector_copy(self, vector) -> None:
        if self.rng.random() < self.plan.obitvector_flip_rate:
            line = self.rng.randrange(LINES_PER_PAGE)
            if vector.is_set(line):
                vector.clear(line)
            else:
                vector.set(line)
            self.stats.obitvector_copy_flips += 1

    def on_tlb_fill(self, entry) -> None:
        if self.rng.random() < self.plan.tlb_fill_flip_rate:
            line = self.rng.randrange(LINES_PER_PAGE)
            vector = entry.obitvector
            if vector.is_set(line):
                vector.clear(line)
            else:
                vector.set(line)
            self.stats.tlb_fill_flips += 1

    def filter_coherence(self, kind: str, opn: int, line: int):
        if self.rng.random() < self.plan.coherence_drop_rate:
            self.stats.coherence_drops += 1
            return False, 0
        if self.rng.random() < self.plan.coherence_delay_rate:
            self.stats.coherence_delays += 1
            return True, self.config.fault_coherence_delay_cycles
        return True, 0

    def on_dram_read(self, address: int) -> int:
        if self.rng.random() >= self.plan.dram_error_rate:
            return 0
        self.stats.dram_errors += 1
        ecc = self.plan.ecc
        if ecc == "secded":
            # Single-error correct in the controller pipeline.
            self.stats.ecc_corrections += 1
            return self.config.ecc_correction_latency
        if ecc == "parity":
            # Detect-only: the controller re-reads the line.
            self.stats.ecc_retries += 1
            return self.config.ecc_retry_latency
        # No protection: the flipped bit lands in the backing store.
        self.stats.silent_bit_errors += 1
        if self.main_memory is not None:
            ppn, offset = divmod(address, PAGE_SIZE)
            byte = self.main_memory.read_bytes(ppn, offset, 1)[0]
            flipped = byte ^ (1 << self.rng.randrange(8))
            self.main_memory.write_bytes(ppn, offset, bytes([flipped]))
        return 0


@contextmanager
def fault_session(plan: FaultPlan,
                  config: Optional[SystemConfig] = None,
                  main_memory=None) -> Iterator[FaultInjector]:
    """Arm a :class:`FaultInjector` for a ``with`` block.

    Installs into the process-wide ``HOOKS.faults`` slot and always
    uninstalls on exit, so a crashed trial can never leak injection into
    the next (the campaign runner's crash outcome depends on this).
    """
    injector = FaultInjector(plan, config=config, main_memory=main_memory)
    install_faults(injector)
    try:
        yield injector
    finally:
        uninstall_faults()
