"""repro.robust — deterministic fault injection, invariant checking,
and hardened run execution.

The robustness layer over the page-overlay machine (rank 3: it drives
every lower layer, nothing imports it).  Three pieces:

* :mod:`repro.robust.faults` — the :class:`FaultPlan` /
  :class:`FaultInjector` pair implementing the engine's
  :class:`~repro.engine.tracing.FaultHook` slot: seeded, per-site fault
  rates with a configurable DRAM ECC model;
* :mod:`repro.robust.invariants` — the :class:`InvariantChecker`
  component sweeping the architectural invariants the paper's
  correctness argument rests on (overlay exclusivity, OMT/page-table
  consistency, TLB coherence, OMS free-list integrity);
* :mod:`repro.robust.campaign` — the campaign runner
  (``python -m repro.robust``) sweeping fault rates and classifying
  trial outcomes into ``results/<name>.faults.json``; it decomposes
  into per-(rate, trial) shards for :mod:`repro.fleet`
  (``--fleet-workers`` / ``--resume``).
"""

from .campaign import (DEFAULT_BASE_PLAN, OUTCOMES, campaign_shards,
                       fault_seed_grid, run_campaign, run_fault_trial_shard,
                       run_trial, synthesize_workload)
from .faults import (ECC_MODES, FaultInjector, FaultPlan, FaultStats,
                     fault_session)
from .invariants import RULES, InvariantChecker, InvariantStats, Violation

__all__ = [
    "DEFAULT_BASE_PLAN",
    "ECC_MODES",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "InvariantChecker",
    "InvariantStats",
    "OUTCOMES",
    "RULES",
    "Violation",
    "campaign_shards",
    "fault_seed_grid",
    "fault_session",
    "run_campaign",
    "run_fault_trial_shard",
    "run_trial",
    "synthesize_workload",
]
