"""Fault-injection campaign CLI.

Usage::

    python -m repro.robust [--name NAME] [--rates R1,R2,...]
                           [--trials N] [--ops N] [--pages N]
                           [--cores N] [--ecc secded|parity|none]
                           [--check-interval CYCLES] [--no-recover]
                           [--seed N] [--results-dir DIR]
                           [--fleet-workers N] [--resume]

Runs a deterministic fault-injection campaign over the page-overlay
machine: for each rate multiplier, ``--trials`` seeded trials execute a
synthetic CoW-heavy workload with faults armed, the invariant checker
sweeping at ``--check-interval`` simulated cycles, and each trial is
classified against a golden (fault-free) run as masked / corrected /
detected_recovered / silent_corruption / crash.  The campaign document
lands crash-safely in ``<results-dir>/<name>.faults.json`` and
validates against the ``repro.obs`` fault-campaign schema.

Same ``--seed`` + same plan => byte-identical artifact (the CI
robustness job runs the smoke campaign twice and diffs the files).

``--fleet-workers N`` shards the campaign per (rate, trial) through
``repro.fleet`` and runs the shards on N worker processes (``0`` =
auto: ``$REPRO_FLEET_WORKERS``, then the CPU count); the merged
document is byte-identical to the serial run (the CI fleet job diffs
them).  Each shard leaves a content-addressed artifact under
``<results-dir>/fleet/<name>/``; ``--resume`` reuses those artifacts,
so a killed run continues where it stopped and a second identical
invocation performs zero simulation work (the summary line reports the
shard-level cached/executed split).
"""

from __future__ import annotations

import sys
from typing import List, Optional

from .campaign import OUTCOMES, run_campaign
from .faults import ECC_MODES

#: The stock sweep: from faults-almost-never to faults-constantly.
DEFAULT_RATES = (0.0, 0.002, 0.01, 0.05)


def _format_summary(doc) -> str:
    lines = [f"fault campaign {doc['name']!r}: "
             f"{sum(doc['outcome_totals'].values())} trial(s)"]
    header = "rate".rjust(8) + "".join(o.rjust(20) for o in OUTCOMES)
    lines.append(header)
    for entry in doc["sweep"]:
        row = f"{entry['rate']:>8g}"
        for outcome in OUTCOMES:
            row += f"{entry['outcomes'][outcome]:>20d}"
        lines.append(row)
    totals = doc["outcome_totals"]
    lines.append("total".rjust(8)
                 + "".join(f"{totals[o]:>20d}" for o in OUTCOMES))
    return "\n".join(lines)


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    name = "fault_campaign"
    rates: Optional[List[float]] = None
    trials, ops, pages, cores = 4, 160, 4, 2
    ecc = "secded"
    check_interval = 0
    recover = True
    seed: Optional[int] = None
    results_dir = None
    fleet_workers: Optional[int] = None
    resume = False

    def _take(flag: str) -> Optional[str]:
        nonlocal i
        i += 1
        if i >= len(args):
            print(f"{flag} requires a value\n{__doc__}")
            return None
        return args[i]

    i = 0
    while i < len(args):
        arg = args[i]
        if arg in ("-h", "--help"):
            print(__doc__)
            return 0
        elif arg == "--name":
            value = _take(arg)
            if value is None:
                return 2
            name = value
        elif arg == "--rates":
            value = _take(arg)
            if value is None:
                return 2
            try:
                rates = [float(token) for token in value.split(",") if token]
            except ValueError:
                print(f"--rates needs comma-separated numbers, got {value!r}")
                return 2
        elif arg in ("--trials", "--ops", "--pages", "--cores",
                     "--check-interval", "--seed", "--fleet-workers"):
            value = _take(arg)
            if value is None:
                return 2
            try:
                number = int(value)
            except ValueError:
                print(f"{arg} needs an integer, got {value!r}")
                return 2
            if arg == "--trials":
                trials = number
            elif arg == "--ops":
                ops = number
            elif arg == "--pages":
                pages = number
            elif arg == "--cores":
                cores = number
            elif arg == "--check-interval":
                check_interval = number
            elif arg == "--fleet-workers":
                if number < 0:
                    print("--fleet-workers must be >= 0 (0 = auto)")
                    return 2
                fleet_workers = number
            else:
                seed = number
        elif arg == "--ecc":
            value = _take(arg)
            if value is None:
                return 2
            if value not in ECC_MODES:
                print(f"--ecc must be one of {', '.join(ECC_MODES)}")
                return 2
            ecc = value
        elif arg == "--no-recover":
            recover = False
        elif arg == "--resume":
            resume = True
        elif arg == "--results-dir":
            value = _take(arg)
            if value is None:
                return 2
            results_dir = value
        else:
            print(f"unknown option {arg}\n{__doc__}")
            return 2
        i += 1

    if min(trials, ops, pages, cores) < 1 or check_interval < 0:
        print("--trials/--ops/--pages/--cores must be positive and "
              "--check-interval non-negative")
        return 2
    fleet_summary = {} if fleet_workers is not None else None
    doc = run_campaign(name, rates if rates is not None else DEFAULT_RATES,
                       trials=trials, ops=ops, pages=pages, cores=cores,
                       ecc=ecc, check_interval=check_interval,
                       recover=recover, seed=seed,
                       results_dir=results_dir,
                       fleet_workers=fleet_workers, resume=resume,
                       fleet_summary=fleet_summary)
    print(_format_summary(doc))
    if fleet_summary:
        corrupt = fleet_summary.get("corrupt", 0)
        print(f"[fleet: {fleet_summary['shards']} shard(s): "
              f"{fleet_summary['hits']} cached, "
              f"{fleet_summary['misses']} executed, "
              f"{fleet_summary['workers']} worker(s)"
              + (f", {corrupt} corrupt artifact(s) recomputed"
                 if corrupt else "") + "]")
    print(f"[wrote {(results_dir or 'results')}/{name}.faults.json]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
