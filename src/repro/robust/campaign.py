"""Fault-injection campaigns: sweep rates, classify outcomes, emit JSON.

The harness tying the robustness layer together.  Each **trial** runs a
deterministic synthetic workload twice on identical machines — once
golden (no faults) and once with a :class:`~repro.robust.FaultPlan`
armed — and classifies what the faults did to the architectural memory
image (every mapped page read back through
:meth:`~repro.core.framework.OverlaySystem.page_bytes`):

``crash``
    the faulted run raised (e.g. a corrupted OMS slot pointer
    dereferenced) — highest precedence;
``detected_recovered``
    the :class:`~repro.robust.InvariantChecker` flagged at least one
    violation and the final image still matches the golden run —
    detection plus recovery preserved correctness;
``corrected``
    no architectural violation, but the ECC model corrected or
    retried DRAM errors, and the image matches;
``masked``
    faults were injected (or none fired) and the image matches anyway —
    the corruption was architecturally dead;
``silent_corruption``
    the final image differs from the golden run.  When ``detections``
    is nonzero the corruption was *seen* but recovery failed to restore
    the image; it still counts as data corruption, not success.

A **campaign** sweeps a list of fault-rate multipliers over a base
plan, tallies outcomes per rate, and writes
``results/<name>.faults.json`` through the crash-safe
:func:`repro.obs.export.write_json`.  The document embeds the
*deterministic* manifest half only, so the same ``rng_seed`` plus the
same plan reproduce the artifact byte for byte (the CI robustness job
asserts exactly this).

Because every trial builds its own machines and derives its own RNG
streams, a campaign decomposes into per-(rate, trial) shards: pass
``fleet_workers`` to run them through :func:`repro.fleet.run_fleet`
(content-addressed caching, ``resume=True`` to reuse a previous —
possibly killed — run's shard artifacts).  The merged document is
byte-identical to the serial path's; the CI fleet job asserts this.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..config import DEFAULT_CONFIG, SystemConfig
from ..core.address import PAGE_SIZE
from ..engine.rng import derive_rng, resolve_seed
from ..fleet.runner import run_fleet
from ..fleet.shards import Shard
from ..obs.export import default_results_dir, write_json
from ..obs.manifest import RunManifest
from ..obs.schema import FAULTS_SCHEMA, validate
from ..osmodel.kernel import Kernel
from .faults import FaultPlan, fault_session
from .invariants import InvariantChecker

#: Trial outcome classes, in classification precedence order.
OUTCOMES = ("masked", "corrected", "detected_recovered",
            "silent_corruption", "crash")

#: RNG stream for the synthetic workload (decorrelated from the fault
#: stream so arming faults never changes the access sequence).
WORKLOAD_STREAM = 9100

#: First virtual page of the workload's mapped region.
BASE_VPN = 0x100

#: Per-site weights the rate multiplier scales (see
#: :meth:`FaultPlan.scaled`): mapping-state flips dominate, coherence
#: and segment-metadata faults are rarer, as soft-error cross sections
#: scale with structure size.
DEFAULT_BASE_PLAN = FaultPlan(
    omt_flip_rate=1.0,
    obitvector_flip_rate=1.0,
    tlb_fill_flip_rate=1.0,
    coherence_drop_rate=0.5,
    coherence_delay_rate=0.5,
    dram_error_rate=1.0,
    segment_pointer_rate=0.25,
)

#: Decorrelation strides for per-trial fault seeds.  Distinct primes
#: keep (rate, trial) pairs apart, but that is *checked*, not assumed:
#: :func:`fault_seed_grid` raises on any duplicate derived seed.
_RATE_STRIDE = 7919
_TRIAL_STRIDE = 104729


def fault_seed_grid(fault_base_seed: int, num_rates: int, trials: int, *,
                    rate_stride: int = _RATE_STRIDE,
                    trial_stride: int = _TRIAL_STRIDE) -> List[List[int]]:
    """Per-(rate, trial) fault seeds, verified collision-free.

    Two grid cells sharing a seed would inject *identical* fault
    sequences while claiming to be independent trials — silently
    narrowing the campaign's coverage.  The stride arithmetic makes
    that impossible for any grid smaller than ``trial_stride`` rates by
    ``rate_stride`` trials, but rather than trust the comment this
    builds the full seed set and raises :class:`ValueError` naming the
    first colliding pair.
    """
    if num_rates < 0 or trials < 0:
        raise ValueError(f"grid dimensions must be >= 0, got "
                         f"{num_rates} rate(s) x {trials} trial(s)")
    seen: Dict[int, Tuple[int, int]] = {}
    grid: List[List[int]] = []
    for rate_index in range(num_rates):
        row = []
        for trial in range(trials):
            fault_seed = (fault_base_seed + rate_stride * rate_index
                          + trial_stride * trial)
            if fault_seed in seen:
                first_rate, first_trial = seen[fault_seed]
                raise ValueError(
                    f"fault seed collision across the rate x trial grid: "
                    f"(rate {rate_index}, trial {trial}) and "
                    f"(rate {first_rate}, trial {first_trial}) both derive "
                    f"seed {fault_seed} with strides {rate_stride}/"
                    f"{trial_stride}; such trials would inject identical "
                    f"fault sequences")
            seen[fault_seed] = (rate_index, trial)
            row.append(fault_seed)
        grid.append(row)
    return grid


def synthesize_workload(rng, ops: int, pages: int) -> List[Tuple]:
    """A deterministic op list: CoW-heavy writes, reads, promotions.

    The mix exercises every injection site: writes drive overlaying
    writes (coherence messages, OMT updates), reads drive TLB fills,
    DRAM reads and OMT walks, the occasional cache flush pushes dirty
    overlay lines into OMS segments (whose metadata the segment-pointer
    fault targets), and ``commit`` promotions drive broadcast commits
    and segment frees.

    *ops* must be non-negative and *pages* must map a span wider than
    the 8-byte accesses the mix places (with 4 KiB pages: at least one
    page); degenerate inputs raise :class:`ValueError` up front instead
    of crashing inside ``rng.randrange`` mid-generation.
    """
    if ops < 0:
        raise ValueError(f"ops must be >= 0, got {ops}")
    span = pages * PAGE_SIZE
    if span <= 8:
        raise ValueError(
            f"workload span must exceed 8 bytes to place 8-byte accesses: "
            f"pages={pages} gives a {span}-byte span; pass pages >= 1")
    base = BASE_VPN * PAGE_SIZE
    result: List[Tuple] = []
    for _ in range(ops):
        roll = rng.random()
        if roll < 0.55:
            vaddr = base + rng.randrange(span - 8)
            value = bytes([rng.randrange(256)]) * 8
            result.append(("write", vaddr, value))
        elif roll < 0.88:
            vaddr = base + rng.randrange(span - 8)
            result.append(("read", vaddr, 8))
        elif roll < 0.93:
            result.append(("flush",))
        else:
            result.append(("promote", rng.randrange(pages), "commit"))
    return result


def _build_machine(config: SystemConfig, pages: int,
                   cores: int) -> Tuple[Kernel, Any]:
    kernel = Kernel(num_cores=cores, config=config, total_frames=1 << 16)
    process = kernel.create_process()
    # Mark the pages CoW (against a self-share) so writes take the
    # overlaying-write path — fork gives each page a sharer.
    kernel.mmap(process, BASE_VPN, pages, fill=b"\xa5")
    kernel.fork(process)
    return kernel, process


def _execute(ops_list: Sequence[Tuple], kernel: Kernel, process,
             checker: Optional[InvariantChecker] = None,
             recover: bool = True) -> Dict[str, Any]:
    """Drive the op list; returns detection/recovery telemetry."""
    system = kernel.system
    cores = len(system.tlbs)
    detections = 0
    recovery_cycles = 0
    first_violations: List[Dict[str, str]] = []
    cycle = system.clock
    for index, op in enumerate(ops_list):
        core = index % cores
        if op[0] == "write":
            latency = system.write(process.asid, op[1], op[2], core=core)
        elif op[0] == "read":
            _, latency = system.read(process.asid, op[1], op[2],
                                     core=core)
        elif op[0] == "flush":
            system.hierarchy.flush_dirty()
            latency = 0
        else:
            vpn = BASE_VPN + op[1]
            if system.overlay_line_count(process.asid, vpn):
                latency = system.promote(process.asid, vpn, op[2])
            else:
                latency = 0
        cycle += latency
        system.clock = cycle
        if checker is not None:
            violations = checker.maybe_check()
            if violations:
                detections += len(violations)
                if not first_violations:
                    first_violations = [v.to_dict()
                                        for v in violations[:4]]
                if recover:
                    repaired = checker.repair(violations)
                    recovery_cycles += repaired
                    cycle += repaired
                    system.clock = cycle
    if checker is not None:
        violations = checker.check_all()
        if violations:
            detections += len(violations)
            if not first_violations:
                first_violations = [v.to_dict() for v in violations[:4]]
            if recover:
                recovery_cycles += checker.repair(violations)
    return {"detections": detections,
            "recovery_cycles": recovery_cycles,
            "violations": first_violations}


def _final_image(kernel: Kernel, process) -> List[bytes]:
    system = kernel.system
    return [system.page_bytes(process.asid, vpn)
            for vpn in sorted(process.mappings)]


def run_trial(plan: FaultPlan, *, ops: int = 160, pages: int = 4,
              cores: int = 2, workload_seed: Optional[int] = None,
              check_interval: int = 0, recover: bool = True,
              config: Optional[SystemConfig] = None) -> Dict[str, Any]:
    """One golden-vs-faulted run pair; returns the trial record."""
    config = config or DEFAULT_CONFIG
    rng = derive_rng(None, workload_seed, stream=WORKLOAD_STREAM,
                     config=config)
    ops_list = synthesize_workload(rng, ops, pages)

    kernel, process = _build_machine(config, pages, cores)
    _execute(ops_list, kernel, process)
    golden = _final_image(kernel, process)

    kernel, process = _build_machine(config, pages, cores)
    checker = InvariantChecker(kernel.system,
                               check_interval=check_interval)
    record: Dict[str, Any] = {"detections": 0, "repairs": 0,
                              "recovery_cycles": 0, "violations": []}
    with fault_session(plan, config=config,
                       main_memory=kernel.system.main_memory) as injector:
        try:
            telemetry = _execute(ops_list, kernel, process,
                                 checker=checker, recover=recover)
            record.update(telemetry)
            image: Optional[List[bytes]] = _final_image(kernel, process)
            error: Optional[str] = None
        except Exception as failure:  # crash outcome: anything the
            # faulted machine raises, including OMS metadata corruption.
            image = None
            error = f"{type(failure).__name__}: {failure}"
    record["repairs"] = checker.stats.repairs
    record["faults"] = injector.stats.to_dict()
    ecc_events = (injector.stats.ecc_corrections
                  + injector.stats.ecc_retries)
    if error is not None:
        record["outcome"] = "crash"
        record["error"] = error
    elif image != golden:
        record["outcome"] = "silent_corruption"
    elif record["detections"]:
        record["outcome"] = "detected_recovered"
    elif ecc_events:
        record["outcome"] = "corrected"
    else:
        record["outcome"] = "masked"
    return record


def campaign_shards(rates: Sequence[float], seed_grid: List[List[int]],
                    base: FaultPlan, manifest: Dict[str, Any], *,
                    trials: int, ops: int, pages: int, cores: int,
                    check_interval: int, recover: bool,
                    workload_seed: int) -> List[Shard]:
    """One ``fault_trial`` shard per (rate, trial) grid cell.

    Each shard is self-contained: the scaled per-site rates, the derived
    fault seed, the workload parameters, and the deterministic manifest
    half (whose ``config`` the worker rebuilds its
    :class:`~repro.config.SystemConfig` from).
    """
    shards: List[Shard] = []
    for rate_index, rate in enumerate(rates):
        scaled = base.scaled(rate)
        for trial in range(trials):
            params = {
                "plan_rates": dict(sorted(scaled.rates().items())),
                "ecc": scaled.ecc,
                "stream": scaled.stream,
                "fault_seed": seed_grid[rate_index][trial],
                "ops": ops, "pages": pages, "cores": cores,
                "workload_seed": workload_seed,
                "check_interval": check_interval,
                "recover": recover,
            }
            shards.append(Shard(kind="fault_trial", index=len(shards),
                                params=params, manifest=manifest))
    return shards


def run_fault_trial_shard(shard: Shard) -> Dict[str, Any]:
    """Execute one campaign shard (the ``fault_trial`` fleet runner).

    Reconstructs the config and plan from the shard's JSON-ready data
    and produces exactly the trial record the serial loop would.
    """
    params = shard.params
    config = SystemConfig(**shard.manifest["config"])
    plan = FaultPlan(ecc=params["ecc"], seed=params["fault_seed"],
                     stream=params["stream"], **params["plan_rates"])
    record = run_trial(plan, ops=params["ops"], pages=params["pages"],
                       cores=params["cores"],
                       workload_seed=params["workload_seed"],
                       check_interval=params["check_interval"],
                       recover=params["recover"], config=config)
    record["fault_seed"] = params["fault_seed"]
    return record


def run_campaign(name: str, rates: Sequence[float], *, trials: int = 4,
                 ops: int = 160, pages: int = 4, cores: int = 2,
                 ecc: str = "secded", check_interval: int = 0,
                 recover: bool = True, seed: Optional[int] = None,
                 base_plan: Optional[FaultPlan] = None,
                 config: Optional[SystemConfig] = None,
                 results_dir=None, fleet_workers: Optional[int] = None,
                 resume: bool = False,
                 fleet_summary: Optional[Dict[str, Any]] = None
                 ) -> Dict[str, Any]:
    """Sweep *rates* over the base plan; write ``<name>.faults.json``.

    Returns the validated document (already written).  *rates* are
    multipliers applied to :data:`DEFAULT_BASE_PLAN`'s per-site weights;
    *seed* overrides the config's base RNG seed for both the workload
    and the fault streams.

    With *fleet_workers* set (``0`` = auto-resolve), trials shard
    through :func:`repro.fleet.run_fleet` — run in parallel, each
    leaving a content-addressed artifact under
    ``<results_dir>/fleet/<name>/`` — and merge into the byte-identical
    serial document.  *resume* reuses artifacts a previous run (killed
    or complete) left in that cache; pass a dict as *fleet_summary* to
    receive the shard/hit/miss/worker counters.
    """
    config = config or DEFAULT_CONFIG
    base = base_plan or DEFAULT_BASE_PLAN
    base = FaultPlan(ecc=ecc, seed=base.seed, stream=base.stream,
                     **base.rates())
    workload_seed = resolve_seed(seed, stream=WORKLOAD_STREAM,
                                 config=config)
    fault_base_seed = resolve_seed(seed, stream=base.stream, config=config)
    seed_grid = fault_seed_grid(fault_base_seed, len(rates), trials)
    manifest = RunManifest.create(name, config=config, seed=seed)
    results = (default_results_dir() if results_dir is None
               else Path(results_dir))
    if fleet_workers is None:
        records: List[Dict[str, Any]] = []
        for rate_index, rate in enumerate(rates):
            scaled = base.scaled(rate)
            for trial in range(trials):
                fault_seed = seed_grid[rate_index][trial]
                plan = FaultPlan(ecc=scaled.ecc, seed=fault_seed,
                                 stream=scaled.stream, **scaled.rates())
                record = run_trial(plan, ops=ops, pages=pages, cores=cores,
                                   workload_seed=workload_seed,
                                   check_interval=check_interval,
                                   recover=recover, config=config)
                record["fault_seed"] = fault_seed
                records.append(record)
    else:
        shards = campaign_shards(
            rates, seed_grid, base, manifest.deterministic_dict(),
            trials=trials, ops=ops, pages=pages, cores=cores,
            check_interval=check_interval, recover=recover,
            workload_seed=workload_seed)
        result = run_fleet(shards, workers=fleet_workers, resume=resume,
                           cache_dir=results / "fleet" / name)
        if fleet_summary is not None:
            fleet_summary.update(result.summary.to_dict())
        records = result.payloads
    sweep: List[Dict[str, Any]] = []
    totals = {outcome: 0 for outcome in OUTCOMES}
    position = 0
    for rate in rates:
        trial_records = records[position:position + trials]
        position += trials
        tally = {outcome: 0 for outcome in OUTCOMES}
        for record in trial_records:
            tally[record["outcome"]] += 1
            totals[record["outcome"]] += 1
        sweep.append({"rate": rate, "outcomes": tally,
                      "trials": trial_records})
    doc: Dict[str, Any] = {
        "kind": "fault_campaign",
        "name": name,
        "manifest": manifest.deterministic_dict(),
        "plan": base.to_dict(),
        "parameters": {"trials": trials, "ops": ops, "pages": pages,
                       "cores": cores, "check_interval": check_interval,
                       "recover": recover,
                       "workload_seed": workload_seed},
        "sweep": sweep,
        "outcome_totals": totals,
    }
    validate(doc, FAULTS_SCHEMA, f"{name} fault campaign")
    write_json(results / f"{name}.faults.json", doc)
    return doc
