"""Memory-hierarchy substrate: caches, replacement, prefetcher, DRAM."""

from .cache import CacheLine, EvictedLine, SetAssociativeCache
from .dram import DRAM
from .hierarchy import AccessResult, MemoryHierarchy
from .mainmemory import MainMemory
from .prefetcher import StreamPrefetcher
from .replacement import DRRIPPolicy, LRUPolicy, make_policy
from .stats import CacheStats, DRAMStats, StatRegistry

__all__ = ["AccessResult", "CacheLine", "CacheStats", "DRAM", "DRAMStats",
           "DRRIPPolicy", "EvictedLine", "LRUPolicy", "MainMemory",
           "MemoryHierarchy", "SetAssociativeCache", "StatRegistry",
           "StreamPrefetcher", "make_policy"]
