# simlint: hot-path
"""DDR3-1066 DRAM timing model with FR-FCFS-style write drains — Table 2.

Configuration reproduced from the paper: DDR3-1066 [28], one channel, one
rank, eight banks, 8B data bus, burst length 8 (one 64B line per burst),
8KB row buffer per bank, open-row policy, and a 64-entry write buffer
drained when full (FR-FCFS [34] batching of writes).

Timing is expressed in CPU cycles at 2.67 GHz.  DDR3-1066 runs its
command clock at 533 MHz (tCK = 1.875 ns ≈ 5 CPU cycles); with 7-7-7
timings, tCAS = tRCD = tRP = 7 tCK ≈ 35 CPU cycles, and a BL8 burst on
the 8B bus takes 4 tCK ≈ 20 CPU cycles.

The model is first-order: per-bank open-row state plus a per-bank
``ready_at`` cycle capturing queueing, which is what the paper's
copy-bandwidth argument (copies consume bandwidth other accesses need)
requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .stats import DRAMStats
from ..config import DEFAULT_CONFIG
from ..engine.component import Component
from ..engine.tracing import HOOKS

#: CPU cycles per DRAM command-clock cycle (2.67 GHz / 533 MHz).
#: Owned by Table 2's SystemConfig.
CPU_CYCLES_PER_TCK = DEFAULT_CONFIG.cpu_cycles_per_tck

#: Column-access strobe latency (7 tCK).
T_CAS = 7 * CPU_CYCLES_PER_TCK
#: Row-to-column delay (7 tCK).
T_RCD = 7 * CPU_CYCLES_PER_TCK
#: Row precharge (7 tCK).
T_RP = 7 * CPU_CYCLES_PER_TCK
#: BL8 burst on the 8B-wide bus: 4 tCK for 64 bytes.
T_BURST = 4 * CPU_CYCLES_PER_TCK
#: Fixed controller pipeline overhead per request.
T_CONTROLLER = 10

ROW_BUFFER_BYTES = 8192
NUM_BANKS = 8


class _Bank:
    __slots__ = ("open_row", "ready_at")

    def __init__(self, open_row: int = -1, ready_at: int = 0):
        self.open_row = open_row
        self.ready_at = ready_at


@dataclass
class DRAM(Component):
    """One channel of DDR3-1066 with open-row policy and a write buffer."""

    write_buffer_capacity: int = 64
    stats: DRAMStats = field(default_factory=DRAMStats)
    _banks: List[_Bank] = field(default_factory=lambda: [_Bank() for _ in range(NUM_BANKS)])
    _write_buffer: Dict[int, int] = field(default_factory=dict)  # line addr -> bank

    def __post_init__(self):
        self.init_component("dram")
        self.stats_scope.own_block(self.stats)

    # -- address mapping ----------------------------------------------------

    @staticmethod
    def _map(address: int) -> Tuple[int, int]:
        """Return (bank, row) for a byte address (row-interleaved banks)."""
        row_index = address // ROW_BUFFER_BYTES
        return row_index % NUM_BANKS, row_index // NUM_BANKS

    # -- timing core ---------------------------------------------------------

    def _service(self, bank: _Bank, row: int, now: int) -> int:
        """Advance *bank* to service one access to *row* starting at *now*;
        return the completion cycle.

        Row hits pipeline: the column-access latency (tCAS) of back-to-back
        hits overlaps, so the bank is occupied for only the burst time
        while the request's own latency still includes tCAS.  Row misses
        occupy the bank for the full activate/precharge sequence.
        """
        start = max(now, bank.ready_at)
        if bank.open_row == row:
            self.stats.row_hits += 1
            occupancy = T_BURST
        elif bank.open_row == -1:
            self.stats.row_misses += 1
            occupancy = T_RCD + T_BURST
        else:
            self.stats.row_misses += 1
            occupancy = T_RP + T_RCD + T_BURST
        bank.open_row = row
        bank.ready_at = start + occupancy
        self.stats.busy_cycles += occupancy
        return start + occupancy + T_CAS

    # -- public interface ------------------------------------------------------

    def read(self, address: int, now: int = 0) -> int:
        """Read the 64B line at *address*; return latency in CPU cycles.

        A read that hits the write buffer is forwarded at controller
        latency — the FR-FCFS controller prioritises row-hit reads and
        services them around buffered writes.
        """
        stats = self.stats
        stats.reads += 1
        line = address & ~63
        if line in self._write_buffer:
            return T_CONTROLLER
        row_index = address // ROW_BUFFER_BYTES
        bank = self._banks[row_index % NUM_BANKS]
        row = row_index // NUM_BANKS
        # _service inlined: the read path is the hierarchy's hot exit.
        ready = bank.ready_at
        start = now if now > ready else ready
        if bank.open_row == row:
            stats.row_hits += 1
            occupancy = T_BURST
        elif bank.open_row == -1:
            stats.row_misses += 1
            occupancy = T_RCD + T_BURST
        else:
            stats.row_misses += 1
            occupancy = T_RP + T_RCD + T_BURST
        bank.open_row = row
        bank.ready_at = start + occupancy
        stats.busy_cycles += occupancy
        done = start + occupancy + T_CAS
        # Fault-injection site: a transient bit error on the read burst.
        # The installed ECC model decides the outcome — SECDED corrects
        # in the controller pipeline, detect-only parity retries the
        # access — and returns the extra latency it charges.
        if HOOKS.faults is not None:
            return done - now + T_CONTROLLER + HOOKS.faults.on_dram_read(
                address)
        return done - now + T_CONTROLLER

    def write(self, address: int, now: int = 0) -> int:
        """Buffer a 64B line write; returns the (small) enqueue latency.

        Writes are not on the critical path: they sit in the write buffer
        until it fills, then the controller drains it in one batch
        (drain-when-full, Table 2), occupying banks and thereby delaying
        subsequent reads — which is how write bandwidth pressure becomes
        visible to the workload.
        """
        self.stats.writes += 1
        line = address & ~63
        self._write_buffer[line] = (address // ROW_BUFFER_BYTES) % NUM_BANKS
        self.stats.write_buffer_peak = max(self.stats.write_buffer_peak,
                                           len(self._write_buffer))
        if len(self._write_buffer) >= self.write_buffer_capacity:
            self.drain_writes(now)
        return T_CONTROLLER

    def drain_writes(self, now: int = 0) -> int:
        """Drain the whole write buffer; returns cycles of bank occupancy.

        FR-FCFS batching: drains are sorted by (bank, row) so row hits are
        maximised, as a real FR-FCFS scheduler would.
        """
        if not self._write_buffer:
            return 0
        self.stats.write_drains += 1
        occupancy = 0
        pending = sorted(self._write_buffer, key=lambda a: (self._map(a)))
        for line in pending:
            bank_index, row = self._map(line)
            before = self._banks[bank_index].ready_at
            done = self._service(self._banks[bank_index], row, now)
            occupancy += done - max(now, before)
        self._write_buffer.clear()
        return occupancy

    @property
    def pending_writes(self) -> int:
        return len(self._write_buffer)

    def bank_ready_at(self, address: int) -> int:
        bank_index, _ = self._map(address)
        return self._banks[bank_index].ready_at
