# simlint: hot-path
"""Cache replacement policies: LRU and DRRIP.

Table 2 of the paper uses LRU for the L1 and L2 caches and DRRIP [27]
(Dynamic Re-Reference Interval Prediction) for the last-level cache.
Policies are per-cache objects driving per-set victim selection; the
cache calls them on every hit, fill, and eviction decision.

DRRIP follows Jaleel et al. [27]: 2-bit re-reference prediction values
(RRPV), SRRIP inserts at RRPV=2, BRRIP inserts at RRPV=3 except 1/32 of
the time, and set-dueling with a 10-bit saturating policy-selection
counter picks between them for follower sets.
"""

from __future__ import annotations

from typing import Dict, List


class ReplacementPolicy:
    """Interface: one instance manages every set of one cache."""

    __slots__ = ("num_sets", "ways")

    def __init__(self, num_sets: int, ways: int):
        self.num_sets = num_sets
        self.ways = ways

    def on_hit(self, set_index: int, way: int) -> None:
        raise NotImplementedError

    def on_fill(self, set_index: int, way: int, prefetch: bool = False) -> None:
        raise NotImplementedError

    def victim(self, set_index: int, occupied: List) -> int:
        """Pick the way to evict (all ways occupied) or fill (some free).

        *occupied* is any per-way sequence whose entries are truthy for
        occupied ways — the cache passes its line bucket directly
        (``CacheLine`` entries are truthy, empty ways are ``None``).
        """
        raise NotImplementedError

    def victim_full(self, set_index: int) -> int:
        """Pick the way to evict in a set known to have no free ways.

        The cache tracks per-set occupancy and calls this in the steady
        state, skipping :meth:`victim`'s free-way scan.
        """
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """Classic least-recently-used, tracked with per-set timestamps."""

    __slots__ = ("_clock", "_last_use")

    def __init__(self, num_sets: int, ways: int):
        super().__init__(num_sets, ways)
        self._clock = 0
        self._last_use: List[List[int]] = [[0] * ways for _ in range(num_sets)]

    def _touch(self, set_index: int, way: int) -> None:
        self._clock += 1
        self._last_use[set_index][way] = self._clock

    def on_hit(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)

    def on_fill(self, set_index: int, way: int, prefetch: bool = False) -> None:
        self._touch(set_index, way)

    def victim(self, set_index: int, occupied: List) -> int:
        for way, used in enumerate(occupied):
            if not used:
                return way
        return self.victim_full(set_index)

    def victim_full(self, set_index: int) -> int:
        stamps = self._last_use[set_index]
        best_way = 0
        best = stamps[0]
        for way in range(1, self.ways):
            stamp = stamps[way]
            if stamp < best:
                best = stamp
                best_way = way
        return best_way


class DRRIPPolicy(ReplacementPolicy):
    """Dynamic RRIP with set-dueling between SRRIP and BRRIP [27]."""

    MAX_RRPV = 3          # 2-bit RRPV
    LONG_RRPV = 2         # SRRIP insertion point
    DISTANT_RRPV = 3      # BRRIP insertion point (most of the time)
    BRRIP_LONG_EVERY = 32 # BRRIP inserts at LONG_RRPV 1/32 of the time
    PSEL_BITS = 10
    DUELING_SETS = 32     # leader sets per policy

    __slots__ = ("_rrpv", "_psel", "_psel_max", "_psel_mid",
                 "_brrip_throttle", "_leader")

    def __init__(self, num_sets: int, ways: int):
        super().__init__(num_sets, ways)
        self._rrpv: List[List[int]] = [
            [self.MAX_RRPV] * ways for _ in range(num_sets)]
        self._psel = (1 << self.PSEL_BITS) // 2
        self._psel_max = (1 << self.PSEL_BITS) - 1
        self._psel_mid = (self._psel_max + 1) // 2
        self._brrip_throttle = 0
        self._leader: Dict[int, str] = {}
        stride = max(1, num_sets // (2 * self.DUELING_SETS))
        for i in range(self.DUELING_SETS):
            srrip_set = (2 * i * stride) % num_sets
            brrip_set = ((2 * i + 1) * stride) % num_sets
            self._leader.setdefault(srrip_set, "srrip")
            self._leader.setdefault(brrip_set, "brrip")

    def _policy_for(self, set_index: int) -> str:
        leader = self._leader.get(set_index)
        if leader is not None:
            return leader
        return "srrip" if self._psel < (self._psel_max + 1) // 2 else "brrip"

    def _account_miss(self, set_index: int) -> None:
        # A miss in a leader set votes against that leader's policy.
        leader = self._leader.get(set_index)
        if leader == "srrip":
            self._psel = min(self._psel_max, self._psel + 1)
        elif leader == "brrip":
            self._psel = max(0, self._psel - 1)

    def on_hit(self, set_index: int, way: int) -> None:
        # Hit promotion: RRPV -> 0 (near-immediate re-reference).
        self._rrpv[set_index][way] = 0

    def on_fill(self, set_index: int, way: int, prefetch: bool = False) -> None:
        # _account_miss + _policy_for flattened into one leader lookup.
        leader = self._leader.get(set_index)
        psel = self._psel
        if leader is None:
            srrip = psel < self._psel_mid
        elif leader == "srrip":
            if psel < self._psel_max:
                self._psel = psel + 1
            srrip = True
        else:
            if psel > 0:
                self._psel = psel - 1
            srrip = False
        if srrip:
            rrpv = self.LONG_RRPV
        else:
            self._brrip_throttle = (self._brrip_throttle + 1) % self.BRRIP_LONG_EVERY
            rrpv = self.LONG_RRPV if self._brrip_throttle == 0 else self.DISTANT_RRPV
        if prefetch:
            rrpv = self.DISTANT_RRPV  # prefetches inserted with distant prediction
        self._rrpv[set_index][way] = rrpv

    def victim(self, set_index: int, occupied: List) -> int:
        for way, used in enumerate(occupied):
            if not used:
                return way
        return self.victim_full(set_index)

    def victim_full(self, set_index: int) -> int:
        rrpvs = self._rrpv[set_index]
        ways = self.ways
        max_rrpv = self.MAX_RRPV
        while True:
            for way in range(ways):
                if rrpvs[way] >= max_rrpv:
                    return way
            for way in range(ways):
                rrpvs[way] += 1


def make_policy(name: str, num_sets: int, ways: int) -> ReplacementPolicy:
    """Factory used by cache construction; ``name`` is 'lru' or 'drrip'."""
    policies = {"lru": LRUPolicy, "drrip": DRRIPPolicy}
    try:
        return policies[name.lower()](num_sets, ways)
    except KeyError:
        raise ValueError(f"unknown replacement policy {name!r}") from None
