# simlint: hot-path
"""Stream prefetcher — Table 2.

The paper's configuration: a multi-stream prefetcher in the style of the
IBM POWER6 [33] / feedback-directed [48] designs, monitoring L2 misses and
prefetching into the L3, with 16 stream entries, degree 4 and distance 24.

The model: each stream tracks a region and direction.  A miss either
trains an existing stream (advancing it and issuing up to ``degree``
prefetches that stay within ``distance`` lines of the demand miss) or
allocates a new stream entry (LRU replacement among the 16 entries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


class _Stream:
    """One tracked stream: last demand line, direction, next prefetch."""

    __slots__ = ("last_line", "direction", "next_prefetch", "confidence",
                 "lru")

    def __init__(self, last_line: int, direction: int = 0,
                 next_prefetch: int = 0, confidence: int = 0, lru: int = 0):
        self.last_line = last_line
        self.direction = direction   # +1, -1, or 0 while still training
        self.next_prefetch = next_prefetch
        self.confidence = confidence
        self.lru = lru


@dataclass
class PrefetcherStats:
    trainings: int = 0
    allocations: int = 0
    issued: int = 0


class StreamPrefetcher:
    """A 16-entry stream prefetcher issuing into the level below L2."""

    __slots__ = ("entries", "degree", "distance", "train_window", "_streams",
                 "_clock", "stats")

    def __init__(self, entries: int = 16, degree: int = 4, distance: int = 24,
                 train_window: int = 4):
        self.entries = entries
        self.degree = degree
        self.distance = distance
        self.train_window = train_window
        self._streams: List[_Stream] = []
        self._clock = 0
        self.stats = PrefetcherStats()

    def _find_stream(self, line: int) -> _Stream:
        window = self.train_window
        distance = self.distance
        for stream in self._streams:
            delta = line - stream.last_line
            if -window <= delta <= window:
                return stream
            direction = stream.direction
            if direction and 0 <= delta * direction <= distance:
                return stream
        return None

    def on_miss(self, line: int) -> List[int]:
        """Train on an L2 demand miss at *line*; return lines to prefetch."""
        self._clock += 1
        stream = self._find_stream(line)
        if stream is None:
            if len(self._streams) >= self.entries:
                victim = self._streams[0]
                best = victim.lru
                for candidate in self._streams:
                    if candidate.lru < best:
                        best = candidate.lru
                        victim = candidate
                self._streams.remove(victim)
            stream = _Stream(last_line=line, lru=self._clock)
            self._streams.append(stream)
            self.stats.allocations += 1
            return []

        self.stats.trainings += 1
        stream.lru = self._clock
        delta = line - stream.last_line
        if delta == 0:
            return []
        direction = 1 if delta > 0 else -1
        if stream.direction == direction:
            stream.confidence = min(stream.confidence + 1, 4)
        else:
            stream.direction = direction
            stream.confidence = 1
            stream.next_prefetch = line + direction
        stream.last_line = line

        if stream.confidence < 2:
            return []
        # Issue up to `degree` prefetches, never farther than `distance`
        # lines ahead of the demand miss.
        prefetches = []
        limit = line + direction * self.distance
        candidate = max(stream.next_prefetch * direction, (line + direction) * direction) * direction
        for _ in range(self.degree):
            if (limit - candidate) * direction < 0:
                break
            prefetches.append(candidate)
            candidate += direction
        if prefetches:
            stream.next_prefetch = prefetches[-1] + direction
            self.stats.issued += len(prefetches)
        return prefetches

    def active_streams(self) -> int:
        return len(self._streams)
