"""Shared statistics containers for the memory hierarchy."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CacheStats:
    """Hit/miss/writeback counters for one cache level."""

    name: str = ""
    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    prefetch_fills: int = 0
    prefetch_hits: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0


@dataclass
class DRAMStats:
    """Counters for the DRAM model."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    write_drains: int = 0
    write_buffer_peak: int = 0
    busy_cycles: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0


@dataclass
class StatRegistry:
    """A bag of named statistics blocks, for whole-system reporting.

    Legacy adapter: snapshotting, resetting and merging now delegate to
    the engine (:mod:`repro.engine.stats`), which is also where the
    live system keeps its hierarchical registry
    (:attr:`repro.core.framework.OverlaySystem.stats_scope`).
    """

    blocks: Dict[str, object] = field(default_factory=dict)

    def register(self, name: str, block: object) -> None:
        self.blocks[name] = block

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        from ..engine.stats import snapshot_block
        return {name: snapshot_block(block)
                for name, block in self.blocks.items()}

    def merge(self, other: "StatRegistry") -> None:
        """Sum *other*'s blocks into this registry's same-named blocks."""
        from ..engine.stats import merge_blocks
        for name, block in other.blocks.items():
            if name in self.blocks:
                merge_blocks(self.blocks[name], block)
            else:
                self.blocks[name] = block
