"""The three-level cache hierarchy of Table 2, glued to DRAM.

* L1: 64KB, 4-way, tag/data 1/2 cycles, parallel lookup, LRU.
* L2: 512KB, 8-way, tag/data 2/8 cycles, parallel lookup, LRU.
* L3: 2MB, 16-way, tag/data 10/24 cycles, serial lookup, DRRIP.
* Stream prefetcher monitoring L2 misses, prefetching into L3.
* Inclusion is not enforced at any level (Section 5).

Every Table 2 default above is *derived from*
:class:`~repro.config.SystemConfig` through
:class:`~repro.engine.builder.SystemBuilder` — this module holds no
numeric configuration of its own.  Per-level ``l?_kwargs`` still
override individual fields (ablations, small test hierarchies).

The hierarchy works on line *tags*.  Regular physical tags resolve to a
DRAM byte address as ``tag * 64``; overlay tags carry the overlay marker
bit and are resolved by the memory controller through the OMT — the
controller serves the hierarchy's three typed ports
(:attr:`MemoryHierarchy.miss_port`, :attr:`~MemoryHierarchy.fetch_port`,
:attr:`~MemoryHierarchy.writeback_port`) for that (Section 4.3.1: the
Overlay Memory Store is accessed only when an access misses the entire
hierarchy).
"""

# simlint: hot-path
from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from .cache import EvictedLine, SetAssociativeCache
from .dram import DRAM
from .prefetcher import StreamPrefetcher
from ..engine.component import Component
from ..engine.port import FetchPort, MissPort, MissResolution, WritebackPort
from ..engine.tracing import HOOKS

#: Hook resolving a line tag to ``(dram_byte_address, extra_latency)``.
#: (Legacy alias — handlers now connect to :attr:`MemoryHierarchy.miss_port`.)
MissResolver = Callable[[int], Tuple[Optional[int], int]]
#: Hook returning the backing bytes for a line tag on a full miss.
DataFetcher = Callable[[int], Optional[bytes]]
#: Hook consuming a dirty line evicted from the L3;
#: returns extra latency charged to background writeback traffic.
WritebackHandler = Callable[[int, Optional[bytes]], int]


class AccessResult:
    """Outcome of one hierarchy access."""

    __slots__ = ("latency", "level")

    def __init__(self, latency: int, level: str):
        self.latency = latency
        self.level = level  # "L1", "L2", "L3", or "MEM"

    @property
    def hit_in_cache(self) -> bool:
        return self.level != "MEM"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AccessResult):
            return (self.latency == other.latency
                    and self.level == other.level)
        return NotImplemented

    def __repr__(self) -> str:
        return f"AccessResult(latency={self.latency}, level={self.level!r})"


class MemoryHierarchy(Component):
    """L1/L2/L3 + prefetcher + DRAM, with overlay-aware miss ports."""

    def __init__(self, dram: Optional[DRAM] = None,
                 resolve_miss: Optional[MissResolver] = None,
                 handle_writeback: Optional[WritebackHandler] = None,
                 fetch_data: Optional[DataFetcher] = None,
                 l1_kwargs: Optional[dict] = None,
                 l2_kwargs: Optional[dict] = None,
                 l3_kwargs: Optional[dict] = None,
                 prefetcher: Optional[StreamPrefetcher] = None,
                 config=None,
                 parent: Optional[Component] = None):
        super().__init__("hierarchy", parent=parent)
        from ..engine.builder import SystemBuilder
        builder = SystemBuilder(config)
        levels = {}
        for level, overrides in (("l1", l1_kwargs), ("l2", l2_kwargs),
                                 ("l3", l3_kwargs)):
            params = builder.cache_params(level)
            params.update(overrides or {})
            levels[level] = SetAssociativeCache(level.upper(), parent=self,
                                                **params)
        self.l1 = levels["l1"]
        self.l2 = levels["l2"]
        self.l3 = levels["l3"]
        self.dram = dram if dram is not None else builder.build_dram()
        self.prefetcher = prefetcher or builder.build_prefetcher()
        self.stats_scope.register_block("prefetcher", self.prefetcher.stats)
        #: Typed channels to the memory controller (or whatever backs the
        #: hierarchy); unconnected ports fall back to a flat physical
        #: address space over ``self.dram``.
        self.miss_port = MissPort("resolve_miss",
                                  resolve_miss or self._default_resolve,
                                  scope=self.stats_scope)
        self.fetch_port = FetchPort("fetch_data",
                                    fetch_data or (lambda tag: None),
                                    scope=self.stats_scope)
        self.writeback_port = WritebackPort(
            "writeback", handle_writeback or self._default_writeback,
            scope=self.stats_scope)
        self._now = 0

    # -- default handlers: plain physical address space ------------------------

    @staticmethod
    def _default_resolve(tag: int) -> MissResolution:
        return MissResolution(address=tag * 64, latency=0)

    def _default_writeback(self, tag: int, data: Optional[bytes]) -> int:
        address, extra = self.miss_port.resolve(tag)
        if address is None:
            return extra
        return extra + self.dram.write(address, self._now)

    # -- eviction plumbing ---------------------------------------------------------

    def _spill(self, level: SetAssociativeCache,
               evicted: Optional[EvictedLine]) -> None:
        """Push a dirty eviction one level down (non-inclusive hierarchy)."""
        if evicted is None or not evicted.dirty:
            return
        if level is self.l1:
            victim = self.l2.fill(evicted.tag, data=evicted.data, dirty=True)
            self._spill(self.l2, victim)
        elif level is self.l2:
            victim = self.l3.fill(evicted.tag, data=evicted.data, dirty=True)
            self._spill(self.l3, victim)
        else:
            self.writeback_port.writeback(evicted.tag, evicted.data)

    def _fill_upward(self, tag: int, data: Optional[bytes],
                     dirty: bool = False) -> None:
        """Install a fetched line into L3, L2 and L1, spilling victims."""
        evicted = self.l3.fill(tag, data=data, dirty=False)
        if evicted is not None and evicted.dirty:
            self._spill(self.l3, evicted)
        evicted = self.l2.fill(tag, data=data, dirty=False)
        if evicted is not None and evicted.dirty:
            self._spill(self.l2, evicted)
        evicted = self.l1.fill(tag, data=data, dirty=dirty)
        if evicted is not None and evicted.dirty:
            self._spill(self.l1, evicted)

    # -- the demand path --------------------------------------------------------

    def access(self, tag: int, write: bool = False,
               data: Optional[bytes] = None, now: Optional[int] = None) -> AccessResult:
        """Perform one demand access for line *tag*.

        Writes are write-back/write-allocate: a write miss fetches the
        line and dirties it in the L1.
        """
        if now is not None:
            self._now = now

        hit, cycles = self.l1.access(tag, write=write, data=data)
        if hit:
            return AccessResult(latency=cycles, level="L1")
        below, level = self._access_below_l1(tag, write, data)
        return AccessResult(latency=cycles + below, level=level)

    def access_fast(self, tag: int, write: bool = False,
                    data: Optional[bytes] = None,
                    now: Optional[int] = None) -> int:
        """Latency-only twin of :meth:`access` for the batched engine.

        Inlines the L1 probe (dict lookup, LRU touch, stats) so the
        overwhelmingly common L1 hit costs no method dispatch; everything
        below the L1 is the exact same code path :meth:`access` takes, so
        stats and cache state stay byte-identical between the two.
        """
        if now is not None:
            self._now = now
        l1 = self.l1
        where = l1._where.get(tag)
        if where is not None:
            set_index, way = where
            line = l1._lines[set_index][way]
            if l1._policy_is_lru:
                policy = l1._policy
                policy._clock += 1
                policy._last_use[set_index][way] = policy._clock
            else:
                l1._policy.on_hit(set_index, way)
            stats = l1.stats
            stats.hits += 1
            if line.prefetched:
                stats.prefetch_hits += 1
                line.prefetched = False
            if write:
                line.dirty = True
                if data is not None:
                    line.data = data
            return l1.hit_latency
        l1.stats.misses += 1
        below, _level = self._access_below_l1(tag, write, data)
        return l1.miss_latency + below

    def _access_below_l1(self, tag: int, write: bool,
                         data: Optional[bytes]) -> Tuple[int, str]:
        """The shared post-L1-miss demand path: L2, L3, then memory.

        The common all-levels-miss case is inlined: the L2/L3 miss probes
        and the port dispatch avoid method-call layers while performing
        exactly the operations (stats, LRU touches, hook emissions) the
        un-inlined calls would.
        """
        l2 = self.l2
        if l2._where.get(tag) is not None:
            _hit, latency = l2.access(tag, write=False)
            line = l2.lookup(tag)
            # Dirty ownership moves *up* with the data: leaving the L2
            # copy dirty would create a stale dirty duplicate that a
            # later flush or eviction writes back over fresher data.
            promoted_dirty = write or line.dirty
            line.dirty = False
            evicted = self.l1.fill(tag, data=line.data, dirty=promoted_dirty)
            if evicted is not None and evicted.dirty:
                self._spill(self.l1, evicted)
            if data is not None and write:
                self.l1.access(tag, write=True, data=data)
            return latency, "L2"
        l2.stats.misses += 1
        latency = l2.miss_latency

        # L2 miss: train the prefetcher (it prefetches into the L3).
        for pf_tag in self.prefetcher.on_miss(tag):
            self._prefetch(pf_tag)

        l3 = self.l3
        if l3._where.get(tag) is not None:
            _hit, cycles = l3.access(tag, write=False)
            latency += cycles
            line = l3.lookup(tag)
            promoted_dirty = write or line.dirty
            line.dirty = False
            evicted = l2.fill(tag, data=line.data, dirty=False)
            if evicted is not None and evicted.dirty:
                self._spill(l2, evicted)
            evicted = self.l1.fill(tag, data=line.data, dirty=promoted_dirty)
            if evicted is not None and evicted.dirty:
                self._spill(self.l1, evicted)
            if data is not None and write:
                self.l1.access(tag, write=True, data=data)
            return latency, "L3"
        l3.stats.misses += 1
        latency += l3.miss_latency

        # Full-hierarchy miss: resolve (possibly via the OMT) and go to
        # DRAM.  The port round-trips are inlined (request/latency
        # counters, handler call, hook emission — MissPort.resolve and
        # FetchPort.fetch verbatim, minus the response wrapper).
        miss_port = self.miss_port
        miss_port._requests.value += 1
        response = miss_port._handler(tag)
        if isinstance(response, MissResolution):
            address, extra = response.address, response.latency
        else:
            address, extra = response
        miss_port._latency.value += extra
        if HOOKS.active is not None:
            HOOKS.active.emit(None, "port", miss_port.name,
                              {"op": "resolve", "tag": tag,
                               "latency": extra})
        latency += extra
        if address is not None:
            latency += self.dram.read(address, self._now + latency)
        fetch_port = self.fetch_port
        if HOOKS.active is not None:
            HOOKS.active.emit(None, "port", fetch_port.name,
                              {"op": "fetch", "tag": tag})
        fetch_port._requests.value += 1
        fill_data = fetch_port._handler(tag)
        self._fill_upward(tag, data=fill_data, dirty=write)
        if data is not None and write:
            self.l1.access(tag, write=True, data=data)
        return latency, "MEM"

    def _prefetch(self, tag: int) -> None:
        """Fetch *tag* into the L3 off the demand path."""
        if tag < 0:
            return
        l3 = self.l3
        if l3._where.get(tag) is not None:
            return
        # Inlined MissPort.resolve / FetchPort.fetch (as in
        # _access_below_l1): same counters, handlers, hook emissions.
        miss_port = self.miss_port
        miss_port._requests.value += 1
        response = miss_port._handler(tag)
        if isinstance(response, MissResolution):
            address, extra = response.address, response.latency
        else:
            address, extra = response
        miss_port._latency.value += extra
        if HOOKS.active is not None:
            HOOKS.active.emit(None, "port", miss_port.name,
                              {"op": "resolve", "tag": tag,
                               "latency": extra})
        if address is not None:
            self.dram.read(address, self._now)
        fetch_port = self.fetch_port
        if HOOKS.active is not None:
            HOOKS.active.emit(None, "port", fetch_port.name,
                              {"op": "fetch", "tag": tag})
        fetch_port._requests.value += 1
        evicted = l3.fill(tag, data=fetch_port._handler(tag), prefetch=True)
        if evicted is not None and evicted.dirty:
            self._spill(l3, evicted)

    # -- maintenance operations ----------------------------------------------------

    def retag(self, old_tag: int, new_tag: int) -> bool:
        """Rewrite a resident line's tag in whichever levels hold it."""
        changed = False
        for level in (self.l1, self.l2, self.l3):
            changed = level.retag(old_tag, new_tag) or changed
        return changed

    def invalidate(self, tag: int, writeback: bool = True) -> None:
        """Drop *tag* everywhere, spilling dirty data to memory if asked."""
        for level in (self.l1, self.l2, self.l3):
            evicted = level.invalidate(tag)
            if evicted is not None and evicted.dirty and writeback:
                self.writeback_port.writeback(evicted.tag, evicted.data)

    def flush_dirty(self) -> int:
        """Write back every dirty line (checkpoint barrier); returns count."""
        flushed = 0
        for level in (self.l1, self.l2, self.l3):
            for line in level.dirty_lines():
                self.writeback_port.writeback(line.tag, line.data)
                line.dirty = False
                flushed += 1
        return flushed

    def lookup_data(self, tag: int) -> Optional[bytes]:
        """Return the freshest cached payload for *tag*, if any."""
        for level in (self.l1, self.l2, self.l3):
            line = level.lookup(tag)
            if line is not None and line.data is not None:
                return line.data
        return None

    def dirty_data(self, tag: int) -> Optional[bytes]:
        """Return the payload of the freshest *dirty* copy of *tag*, or
        None when no cached copy is dirty."""
        for level in (self.l1, self.l2, self.l3):
            line = level.lookup(tag)
            if line is not None and line.dirty:
                return line.data
        return None

    def clean(self, tag: int) -> None:
        """Clear the dirty bit on every cached copy of *tag* (after the
        caller has written the data back itself)."""
        for level in (self.l1, self.l2, self.l3):
            line = level.lookup(tag)
            if line is not None:
                line.dirty = False

    def caches(self) -> List[SetAssociativeCache]:
        return [self.l1, self.l2, self.l3]
