"""The three-level cache hierarchy of Table 2, glued to DRAM.

* L1: 64KB, 4-way, tag/data 1/2 cycles, parallel lookup, LRU.
* L2: 512KB, 8-way, tag/data 2/8 cycles, parallel lookup, LRU.
* L3: 2MB, 16-way, tag/data 10/24 cycles, serial lookup, DRRIP.
* Stream prefetcher monitoring L2 misses, prefetching into L3.
* Inclusion is not enforced at any level (Section 5).

Every Table 2 default above is *derived from*
:class:`~repro.config.SystemConfig` through
:class:`~repro.engine.builder.SystemBuilder` — this module holds no
numeric configuration of its own.  Per-level ``l?_kwargs`` still
override individual fields (ablations, small test hierarchies).

The hierarchy works on line *tags*.  Regular physical tags resolve to a
DRAM byte address as ``tag * 64``; overlay tags carry the overlay marker
bit and are resolved by the memory controller through the OMT — the
controller serves the hierarchy's three typed ports
(:attr:`MemoryHierarchy.miss_port`, :attr:`~MemoryHierarchy.fetch_port`,
:attr:`~MemoryHierarchy.writeback_port`) for that (Section 4.3.1: the
Overlay Memory Store is accessed only when an access misses the entire
hierarchy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from .cache import EvictedLine, SetAssociativeCache
from .dram import DRAM
from .prefetcher import StreamPrefetcher
from ..engine.component import Component
from ..engine.port import FetchPort, MissPort, MissResolution, WritebackPort

#: Hook resolving a line tag to ``(dram_byte_address, extra_latency)``.
#: (Legacy alias — handlers now connect to :attr:`MemoryHierarchy.miss_port`.)
MissResolver = Callable[[int], Tuple[Optional[int], int]]
#: Hook returning the backing bytes for a line tag on a full miss.
DataFetcher = Callable[[int], Optional[bytes]]
#: Hook consuming a dirty line evicted from the L3;
#: returns extra latency charged to background writeback traffic.
WritebackHandler = Callable[[int, Optional[bytes]], int]


@dataclass
class AccessResult:
    """Outcome of one hierarchy access."""

    latency: int
    level: str  # "L1", "L2", "L3", or "MEM"

    @property
    def hit_in_cache(self) -> bool:
        return self.level != "MEM"


class MemoryHierarchy(Component):
    """L1/L2/L3 + prefetcher + DRAM, with overlay-aware miss ports."""

    def __init__(self, dram: Optional[DRAM] = None,
                 resolve_miss: Optional[MissResolver] = None,
                 handle_writeback: Optional[WritebackHandler] = None,
                 fetch_data: Optional[DataFetcher] = None,
                 l1_kwargs: Optional[dict] = None,
                 l2_kwargs: Optional[dict] = None,
                 l3_kwargs: Optional[dict] = None,
                 prefetcher: Optional[StreamPrefetcher] = None,
                 config=None,
                 parent: Optional[Component] = None):
        super().__init__("hierarchy", parent=parent)
        from ..engine.builder import SystemBuilder
        builder = SystemBuilder(config)
        levels = {}
        for level, overrides in (("l1", l1_kwargs), ("l2", l2_kwargs),
                                 ("l3", l3_kwargs)):
            params = builder.cache_params(level)
            params.update(overrides or {})
            levels[level] = SetAssociativeCache(level.upper(), parent=self,
                                                **params)
        self.l1 = levels["l1"]
        self.l2 = levels["l2"]
        self.l3 = levels["l3"]
        self.dram = dram if dram is not None else builder.build_dram()
        self.prefetcher = prefetcher or builder.build_prefetcher()
        self.stats_scope.register_block("prefetcher", self.prefetcher.stats)
        #: Typed channels to the memory controller (or whatever backs the
        #: hierarchy); unconnected ports fall back to a flat physical
        #: address space over ``self.dram``.
        self.miss_port = MissPort("resolve_miss",
                                  resolve_miss or self._default_resolve,
                                  scope=self.stats_scope)
        self.fetch_port = FetchPort("fetch_data",
                                    fetch_data or (lambda tag: None),
                                    scope=self.stats_scope)
        self.writeback_port = WritebackPort(
            "writeback", handle_writeback or self._default_writeback,
            scope=self.stats_scope)
        self._now = 0

    # -- default handlers: plain physical address space ------------------------

    @staticmethod
    def _default_resolve(tag: int) -> MissResolution:
        return MissResolution(address=tag * 64, latency=0)

    def _default_writeback(self, tag: int, data: Optional[bytes]) -> int:
        address, extra = self.miss_port.resolve(tag)
        if address is None:
            return extra
        return extra + self.dram.write(address, self._now)

    # -- eviction plumbing ---------------------------------------------------------

    def _spill(self, level: SetAssociativeCache,
               evicted: Optional[EvictedLine]) -> None:
        """Push a dirty eviction one level down (non-inclusive hierarchy)."""
        if evicted is None or not evicted.dirty:
            return
        if level is self.l1:
            victim = self.l2.fill(evicted.tag, data=evicted.data, dirty=True)
            self._spill(self.l2, victim)
        elif level is self.l2:
            victim = self.l3.fill(evicted.tag, data=evicted.data, dirty=True)
            self._spill(self.l3, victim)
        else:
            self.writeback_port.writeback(evicted.tag, evicted.data)

    def _fill_upward(self, tag: int, data: Optional[bytes],
                     dirty: bool = False) -> None:
        """Install a fetched line into L3, L2 and L1, spilling victims."""
        self._spill(self.l3, self.l3.fill(tag, data=data, dirty=False))
        self._spill(self.l2, self.l2.fill(tag, data=data, dirty=False))
        self._spill(self.l1, self.l1.fill(tag, data=data, dirty=dirty))

    # -- the demand path --------------------------------------------------------

    def access(self, tag: int, write: bool = False,
               data: Optional[bytes] = None, now: Optional[int] = None) -> AccessResult:
        """Perform one demand access for line *tag*.

        Writes are write-back/write-allocate: a write miss fetches the
        line and dirties it in the L1.
        """
        if now is not None:
            self._now = now
        latency = 0

        hit, cycles = self.l1.access(tag, write=write, data=data)
        latency += cycles
        if hit:
            return AccessResult(latency=latency, level="L1")

        hit, cycles = self.l2.access(tag, write=False)
        latency += cycles
        if hit:
            line = self.l2.lookup(tag)
            # Dirty ownership moves *up* with the data: leaving the L2
            # copy dirty would create a stale dirty duplicate that a
            # later flush or eviction writes back over fresher data.
            promoted_dirty = write or line.dirty
            line.dirty = False
            self._spill(self.l1, self.l1.fill(
                tag, data=line.data, dirty=promoted_dirty))
            if data is not None and write:
                self.l1.access(tag, write=True, data=data)
            return AccessResult(latency=latency, level="L2")

        # L2 miss: train the prefetcher (it prefetches into the L3).
        for pf_tag in self.prefetcher.on_miss(tag):
            self._prefetch(pf_tag)

        hit, cycles = self.l3.access(tag, write=False)
        latency += cycles
        if hit:
            line = self.l3.lookup(tag)
            promoted_dirty = write or line.dirty
            line.dirty = False
            self._spill(self.l2, self.l2.fill(tag, data=line.data, dirty=False))
            self._spill(self.l1, self.l1.fill(
                tag, data=line.data, dirty=promoted_dirty))
            if data is not None and write:
                self.l1.access(tag, write=True, data=data)
            return AccessResult(latency=latency, level="L3")

        # Full-hierarchy miss: resolve (possibly via the OMT) and go to DRAM.
        address, extra = self.miss_port.resolve(tag)
        latency += extra
        if address is not None:
            latency += self.dram.read(address, self._now + latency)
        fill_data = self.fetch_port.fetch(tag)
        self._fill_upward(tag, data=fill_data, dirty=write)
        if data is not None and write:
            self.l1.access(tag, write=True, data=data)
        return AccessResult(latency=latency, level="MEM")

    def _prefetch(self, tag: int) -> None:
        """Fetch *tag* into the L3 off the demand path."""
        if tag < 0:
            return
        if self.l3.lookup(tag) is not None:
            return
        address, _extra = self.miss_port.resolve(tag)
        if address is not None:
            self.dram.read(address, self._now)
        self._spill(self.l3, self.l3.fill(tag, data=self.fetch_port.fetch(tag),
                                          prefetch=True))

    # -- maintenance operations ----------------------------------------------------

    def retag(self, old_tag: int, new_tag: int) -> bool:
        """Rewrite a resident line's tag in whichever levels hold it."""
        changed = False
        for level in (self.l1, self.l2, self.l3):
            changed = level.retag(old_tag, new_tag) or changed
        return changed

    def invalidate(self, tag: int, writeback: bool = True) -> None:
        """Drop *tag* everywhere, spilling dirty data to memory if asked."""
        for level in (self.l1, self.l2, self.l3):
            evicted = level.invalidate(tag)
            if evicted is not None and evicted.dirty and writeback:
                self.writeback_port.writeback(evicted.tag, evicted.data)

    def flush_dirty(self) -> int:
        """Write back every dirty line (checkpoint barrier); returns count."""
        flushed = 0
        for level in (self.l1, self.l2, self.l3):
            for line in level.dirty_lines():
                self.writeback_port.writeback(line.tag, line.data)
                line.dirty = False
                flushed += 1
        return flushed

    def lookup_data(self, tag: int) -> Optional[bytes]:
        """Return the freshest cached payload for *tag*, if any."""
        for level in (self.l1, self.l2, self.l3):
            line = level.lookup(tag)
            if line is not None and line.data is not None:
                return line.data
        return None

    def dirty_data(self, tag: int) -> Optional[bytes]:
        """Return the payload of the freshest *dirty* copy of *tag*, or
        None when no cached copy is dirty."""
        for level in (self.l1, self.l2, self.l3):
            line = level.lookup(tag)
            if line is not None and line.dirty:
                return line.data
        return None

    def clean(self, tag: int) -> None:
        """Clear the dirty bit on every cached copy of *tag* (after the
        caller has written the data back itself)."""
        for level in (self.l1, self.l2, self.l3):
            line = level.lookup(tag)
            if line is not None:
                line.dirty = False

    def caches(self) -> List[SetAssociativeCache]:
        return [self.l1, self.l2, self.l3]
