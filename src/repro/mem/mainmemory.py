"""Byte-accurate main memory backing store.

Separate from the DRAM *timing* model (:mod:`repro.mem.dram`): this module
holds the actual bytes of regular physical pages so that data-fidelity
techniques (deduplication, checkpointing, speculation, overlay promotion)
can assert on contents.  Frames are 4KB bytearrays allocated lazily and
zero-filled, which also gives the sparse-data-structure technique its
zero page for free.
"""

from __future__ import annotations

from typing import Dict, Iterator

from ..core.address import LINE_SIZE, LINES_PER_PAGE, PAGE_SIZE


class MainMemory:
    """A dictionary of physical frames holding real data bytes."""

    def __init__(self):
        self._frames: Dict[int, bytearray] = {}

    def _frame(self, ppn: int) -> bytearray:
        frame = self._frames.get(ppn)
        if frame is None:
            frame = bytearray(PAGE_SIZE)
            self._frames[ppn] = frame
        return frame

    # -- line granularity ------------------------------------------------------

    def read_line(self, ppn: int, line: int) -> bytes:
        """Return the 64 bytes of cache line *line* in frame *ppn*."""
        if not 0 <= line < LINES_PER_PAGE:
            raise IndexError(f"line index {line} out of range")
        frame = self._frames.get(ppn)
        if frame is None:
            return bytes(LINE_SIZE)
        start = line * LINE_SIZE
        return bytes(frame[start:start + LINE_SIZE])

    def write_line(self, ppn: int, line: int, data: bytes) -> None:
        if len(data) != LINE_SIZE:
            raise ValueError(f"line data must be {LINE_SIZE} bytes")
        if not 0 <= line < LINES_PER_PAGE:
            raise IndexError(f"line index {line} out of range")
        start = line * LINE_SIZE
        self._frame(ppn)[start:start + LINE_SIZE] = data

    # -- page granularity ----------------------------------------------------

    def read_page(self, ppn: int) -> bytes:
        frame = self._frames.get(ppn)
        return bytes(frame) if frame is not None else bytes(PAGE_SIZE)

    def write_page(self, ppn: int, data: bytes) -> None:
        if len(data) != PAGE_SIZE:
            raise ValueError(f"page data must be {PAGE_SIZE} bytes")
        self._frames[ppn] = bytearray(data)

    def copy_page(self, src_ppn: int, dst_ppn: int) -> None:
        """Copy a whole frame (the copy-on-write baseline's page copy)."""
        self._frames[dst_ppn] = bytearray(self.read_page(src_ppn))

    def free_frame(self, ppn: int) -> None:
        self._frames.pop(ppn, None)

    # -- byte granularity (convenience for examples) ----------------------------

    def read_bytes(self, ppn: int, offset: int, length: int) -> bytes:
        if not 0 <= offset <= PAGE_SIZE - length:
            raise IndexError("byte range crosses the frame boundary")
        frame = self._frames.get(ppn)
        if frame is None:
            return bytes(length)
        return bytes(frame[offset:offset + length])

    def write_bytes(self, ppn: int, offset: int, data: bytes) -> None:
        if not 0 <= offset <= PAGE_SIZE - len(data):
            raise IndexError("byte range crosses the frame boundary")
        self._frame(ppn)[offset:offset + len(data)] = data

    # -- accounting -------------------------------------------------------------

    @property
    def touched_frames(self) -> int:
        """Number of frames that have ever been written."""
        return len(self._frames)

    def frames(self) -> Iterator[int]:
        return iter(self._frames)
