# simlint: hot-path
"""A set-associative cache with pluggable replacement and data payloads.

Caches here are keyed by *line tags* — globally unique integers derived
from the physical (or overlay) line address.  The overlay framework's
dual-address trick (Section 3.2) means an overlay line and its physical
twin have different tags, so they coexist in the hierarchy exactly as the
paper intends, and the "retag" step of an overlaying write (Section 4.3.3
step 1: "simply updating the cache tag") is a tag rewrite on a resident
line, implemented by :meth:`SetAssociativeCache.retag`.

Lines optionally carry a 64-byte payload so data-fidelity experiments
(deduplication, checkpointing, speculation) can move real bytes through
the hierarchy; timing-only workloads pass ``None``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .replacement import LRUPolicy, make_policy
from .stats import CacheStats
from ..config import DEFAULT_CONFIG
from ..engine.component import Component


class CacheLine:
    """One resident line: tag, dirtiness, and optional payload."""

    __slots__ = ("tag", "dirty", "data", "prefetched")

    def __init__(self, tag: int, dirty: bool = False,
                 data: Optional[bytes] = None, prefetched: bool = False):
        self.tag = tag
        self.dirty = dirty
        self.data = data
        self.prefetched = prefetched

    def __repr__(self) -> str:
        return (f"CacheLine(tag={self.tag}, dirty={self.dirty}, "
                f"data={self.data!r}, prefetched={self.prefetched})")


class EvictedLine:
    """What falls out of a cache on a fill."""

    __slots__ = ("tag", "dirty", "data")

    def __init__(self, tag: int, dirty: bool, data: Optional[bytes]):
        self.tag = tag
        self.dirty = dirty
        self.data = data

    def __repr__(self) -> str:
        return (f"EvictedLine(tag={self.tag}, dirty={self.dirty}, "
                f"data={self.data!r})")


class SetAssociativeCache(Component):
    """A single cache level.

    Parameters mirror Table 2: size, associativity, tag/data latencies and
    whether tag and data lookups are performed in parallel (L1, L2) or
    serially (L3).
    """

    def __init__(self, name: str, size_bytes: int, ways: int,
                 line_size: int = DEFAULT_CONFIG.cache_line_bytes,
                 tag_latency: int = DEFAULT_CONFIG.l1_tag_latency,
                 data_latency: int = DEFAULT_CONFIG.l1_data_latency,
                 serial_tag_data: bool = False,
                 policy: str = "lru", parent: Component = None):
        super().__init__(name.lower(), parent=parent)
        if size_bytes % (ways * line_size):
            raise ValueError("cache size must divide evenly into sets")
        self.name = name
        self.line_size = line_size
        self.ways = ways
        self.num_sets = size_bytes // (ways * line_size)
        self.tag_latency = tag_latency
        self.data_latency = data_latency
        self.serial_tag_data = serial_tag_data
        self._policy = make_policy(policy, self.num_sets, ways)
        # The batched fast path inlines LRU bookkeeping; any other policy
        # goes through the policy object's methods.
        self._policy_is_lru = type(self._policy) is LRUPolicy
        self._lines: List[List[Optional[CacheLine]]] = [
            [None] * ways for _ in range(self.num_sets)]
        self._where: Dict[int, Tuple[int, int]] = {}
        # Lines resident per set: lets fill() skip the free-way scan once
        # a set is full (the steady state), going straight to eviction.
        self._occupancy: List[int] = [0] * self.num_sets
        # Precomputed ints so hot paths avoid the property dispatch.
        if serial_tag_data:
            self.hit_latency = tag_latency + data_latency
        else:
            self.hit_latency = max(tag_latency, data_latency)
        self.miss_latency = tag_latency
        self.stats = CacheStats(name=name)
        self.stats_scope.own_block(self.stats)

    # -- core operations -------------------------------------------------------

    def _set_index(self, tag: int) -> int:
        return tag % self.num_sets

    def lookup(self, tag: int) -> Optional[CacheLine]:
        """Probe without any side effects (no stats, no LRU update)."""
        where = self._where.get(tag)
        if where is None:
            return None
        set_index, way = where
        return self._lines[set_index][way]

    def access(self, tag: int, write: bool = False,
               data: Optional[bytes] = None) -> Tuple[bool, int]:
        """Access *tag*; return ``(hit, latency)``.

        On a write hit the line is marked dirty and its payload replaced
        when *data* is given.  Misses cost only the tag latency here; the
        hierarchy adds the lower levels' time and then calls :meth:`fill`.
        """
        where = self._where.get(tag)
        if where is None:
            self.stats.misses += 1
            return False, self.miss_latency
        set_index, way = where
        line = self._lines[set_index][way]
        if self._policy_is_lru:
            policy = self._policy
            policy._clock += 1
            policy._last_use[set_index][way] = policy._clock
        else:
            self._policy.on_hit(set_index, way)
        self.stats.hits += 1
        if line.prefetched:
            self.stats.prefetch_hits += 1
            line.prefetched = False
        if write:
            line.dirty = True
            if data is not None:
                line.data = data
        return True, self.hit_latency

    def fill(self, tag: int, data: Optional[bytes] = None,
             dirty: bool = False, prefetch: bool = False) -> Optional[EvictedLine]:
        """Install *tag*, returning the evicted line if one fell out."""
        where_map = self._where
        where = where_map.get(tag)
        if where is not None:
            # Refill of a resident line (e.g. prefetch raced demand): merge.
            line = self._lines[where[0]][where[1]]
            if dirty:
                line.dirty = True
            if data is not None:
                line.data = data
            return None
        set_index = tag % self.num_sets
        bucket = self._lines[set_index]
        policy = self._policy
        stats = self.stats
        is_lru = self._policy_is_lru
        evicted = None
        occupancy = self._occupancy
        if occupancy[set_index] < self.ways:
            way = bucket.index(None)  # first free way, as victim() picks
            occupancy[set_index] += 1
            bucket[way] = CacheLine(tag=tag, dirty=dirty, data=data,
                                    prefetched=prefetch)
        else:
            if is_lru:
                # Inlined LRUPolicy.victim_full: oldest stamp,
                # first-of-equals (matching min()'s tie-break).
                stamps = policy._last_use[set_index]
                way = 0
                best = stamps[0]
                for i in range(1, self.ways):
                    stamp = stamps[i]
                    if stamp < best:
                        best = stamp
                        way = i
            else:
                way = policy.victim_full(set_index)
            victim = bucket[way]
            del where_map[victim.tag]
            stats.evictions += 1
            if victim.dirty:
                stats.dirty_evictions += 1
            evicted = EvictedLine(tag=victim.tag, dirty=victim.dirty,
                                  data=victim.data)
            # Reuse the victim's CacheLine object for the incoming line.
            victim.tag = tag
            victim.dirty = dirty
            victim.data = data
            victim.prefetched = prefetch
        where_map[tag] = (set_index, way)
        if is_lru:
            policy._clock += 1
            policy._last_use[set_index][way] = policy._clock
        else:
            policy.on_fill(set_index, way, prefetch=prefetch)
        stats.fills += 1
        if prefetch:
            stats.prefetch_fills += 1
        return evicted

    def invalidate(self, tag: int) -> Optional[EvictedLine]:
        """Remove *tag*; returns the line (with dirtiness) if present."""
        where = self._where.pop(tag, None)
        if where is None:
            return None
        set_index, way = where
        line = self._lines[set_index][way]
        self._lines[set_index][way] = None
        self._occupancy[set_index] -= 1
        self.stats.invalidations += 1
        return EvictedLine(tag=line.tag, dirty=line.dirty, data=line.data)

    def retag(self, old_tag: int, new_tag: int) -> bool:
        """Rewrite a resident line's tag in place (overlaying-write step 1).

        The line keeps its data and dirtiness but now answers to
        *new_tag*.  Returns False when *old_tag* is not resident or the
        new tag's set already holds it.  When old and new tags land in
        different sets the line is physically moved (hardware would make
        an explicit copy in that case — Section 4.3.3).
        """
        where = self._where.get(old_tag)
        if where is None or new_tag in self._where:
            return False
        set_index, way = where
        line = self._lines[set_index][way]
        new_set = self._set_index(new_tag)
        line.tag = new_tag
        if new_set == set_index:
            del self._where[old_tag]
            self._where[new_tag] = (set_index, way)
            return True
        # Cross-set move: evict from the old slot, fill into the new set.
        self._lines[set_index][way] = None
        self._occupancy[set_index] -= 1
        del self._where[old_tag]
        self.fill(new_tag, data=line.data, dirty=line.dirty)
        return True

    def dirty_lines(self) -> List[CacheLine]:
        """All dirty resident lines (checkpoint/speculation flushes)."""
        return [line for bucket in self._lines for line in bucket
                if line is not None and line.dirty]

    def resident_tags(self) -> List[int]:
        return list(self._where)

    def __contains__(self, tag: int) -> bool:
        return tag in self._where

    def __len__(self) -> int:
        return len(self._where)
