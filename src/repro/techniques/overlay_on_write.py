"""Technique 1: overlay-on-write (Sections 2.2 and 5.1).

When a write hits a copy-on-write page, instead of copying the whole 4KB
frame the hardware creates an overlay holding just the modified cache
line.  Benefits over copy-on-write (Table 1): no page copy on the
critical path, no TLB shootdown (a single *overlaying read exclusive*
message suffices), and memory is consumed one cache line at a time,
lazily, on dirty-line eviction.

:class:`OverlayOnWritePolicy` is the pluggable CoW policy.  Beyond the
framework's raw overlaying write it adds the OS-level promotion policy of
Section 4.3.4: once most of a page's lines live in the overlay, keeping
the overlay no longer helps, so the page is promoted with
*copy-and-commit* into a fresh frame.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.address import LINES_PER_PAGE, page_number
from ..core.framework import OverlaySystem
from ..core.mmu import TranslationResult


@dataclass
class OverlayOnWriteStats:
    overlaying_writes: int = 0
    promotions: int = 0


class OverlayOnWritePolicy:
    """CoW policy that creates per-line overlays, with optional promotion.

    Parameters
    ----------
    kernel:
        The OS kernel (frame allocation for promotions, CoW bookkeeping).
    promote_threshold:
        When an overlay reaches this many lines the page is promoted via
        copy-and-commit into a private frame (None disables promotion;
        the paper notes promotion is worthwhile once "most of the cache
        lines within a virtual page are modified").
    """

    def __init__(self, kernel=None, promote_threshold=None):
        if promote_threshold is not None and not 1 <= promote_threshold <= LINES_PER_PAGE:
            raise ValueError("promote threshold must be within 1..64")
        self.kernel = kernel
        self.promote_threshold = promote_threshold
        self.stats = OverlayOnWriteStats()

    def __call__(self, system: OverlaySystem, asid: int, vaddr: int,
                 chunk: bytes, core: int,
                 translation: TranslationResult) -> int:
        latency = system.overlaying_write(asid, vaddr, chunk, core=core,
                                          translation=translation)
        self.stats.overlaying_writes += 1
        if self.promote_threshold is not None and self.kernel is not None:
            vpn = page_number(vaddr)
            if system.overlay_line_count(asid, vpn) >= self.promote_threshold:
                latency += self._promote(system, asid, vpn,
                                         translation.entry.pte.ppn)
        return latency

    def _promote(self, system: OverlaySystem, asid: int, vpn: int,
                 old_ppn: int) -> int:
        """Copy-and-commit the dense overlay into a private frame."""
        new_ppn = self.kernel.allocator.allocate()
        latency = system.promote(asid, vpn, "copy-and-commit", new_ppn=new_ppn)
        self.kernel.note_cow_copy(asid, vpn, old_ppn, new_ppn)
        self.stats.promotions += 1
        return latency
