"""Technique 4: efficient checkpointing (Section 5.3.2).

Overlays capture all memory updates between two checkpoints: every page
is write-protected at the start of an epoch so stores land in overlays,
and taking a checkpoint writes *only the overlays* to the backing store —
a delta, not the dirty pages — before committing them to the physical
pages.  The paper's claim: this reduces checkpoint write bandwidth
versus page-granularity backup, enabling faster and more frequent
checkpoints.

:class:`CheckpointManager` also keeps the per-epoch deltas it shipped to
the "backing store", so a crashed process's memory image can be rebuilt
(``restore_view``) — the property checkpointing exists to provide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.address import LINE_SIZE, PAGE_SIZE


@dataclass
class CheckpointRecord:
    """One epoch's delta as written to the backing store."""

    epoch: int
    #: (vpn, line) -> 64B payload
    deltas: Dict[Tuple[int, int], bytes] = field(default_factory=dict)

    @property
    def bytes_written(self) -> int:
        """Backing-store traffic for this checkpoint (overlay lines only)."""
        return len(self.deltas) * LINE_SIZE

    @property
    def dirty_pages(self) -> int:
        return len({vpn for vpn, _ in self.deltas})

    @property
    def page_granularity_bytes(self) -> int:
        """What a page-granularity checkpoint would have written."""
        return self.dirty_pages * PAGE_SIZE


class CheckpointManager:
    """Epoch-based overlay checkpointing for one process."""

    def __init__(self, kernel, process):
        self.kernel = kernel
        self.process = process
        self.records: List[CheckpointRecord] = []
        self._base_image: Dict[int, bytes] = {}
        self._epoch_open = False

    @property
    def epoch(self) -> int:
        return len(self.records)

    # -- epoch control -----------------------------------------------------------

    def begin(self) -> None:
        """Start capturing updates: snapshot the base image once and mark
        every page so stores are redirected into overlays."""
        system = self.kernel.system
        if not self._base_image:
            for vpn in self.process.mappings:
                self._base_image[vpn] = system.page_bytes(self.process.asid, vpn)
        for vpn in self.process.mappings:
            system.update_mapping(self.process.asid, vpn,
                                  cow=True, writable=False)
        self._epoch_open = True

    def take_checkpoint(self) -> CheckpointRecord:
        """Flush, ship the overlays to the backing store, commit them.

        Returns the record with the delta actually written; the physical
        pages now reflect the epoch's updates and a new epoch begins.
        """
        if not self._epoch_open:
            raise RuntimeError("no open epoch; call begin() first")
        system = self.kernel.system
        asid = self.process.asid
        # Make sure speculative dirty lines have reached overlays/OMS.
        system.hierarchy.flush_dirty()

        record = CheckpointRecord(epoch=self.epoch)
        for vpn in list(self.process.mappings):
            count = system.overlay_line_count(asid, vpn)
            if count == 0:
                continue
            from ..core.address import overlay_page_number
            entry = system.controller.omt.lookup(overlay_page_number(asid, vpn))
            for line in entry.obitvector.lines():
                data = system.line_bytes(asid, vpn, line)
                # Overlay lines can pre-date the epoch (e.g. dedup
                # difference lines).  Those contents are already part of
                # the recovery baseline, so only genuinely changed lines
                # are shipped as deltas.
                if data != self._expected_line(vpn, line):
                    record.deltas[(vpn, line)] = data
            # Fold the delta into the physical page and drop the overlay.
            # A frame shared with other processes (e.g. after
            # deduplication) must not be written through: break the
            # sharing with copy-and-commit instead.
            ppn = self.process.page_table.entry(vpn).ppn
            if self.kernel.allocator.refcount(ppn) > 1:
                new_ppn = self.kernel.allocator.allocate()
                system.promote(asid, vpn, "copy-and-commit", new_ppn=new_ppn)
                self.kernel.note_cow_copy(asid, vpn, ppn, new_ppn)
            else:
                system.promote(asid, vpn, "commit")
        self.records.append(record)
        self.begin()  # next epoch starts immediately
        return record

    def end(self) -> None:
        """Stop capturing: restore normal write permissions."""
        system = self.kernel.system
        for vpn in self.process.mappings:
            system.update_mapping(self.process.asid, vpn,
                                  cow=False, writable=True)
        self._epoch_open = False

    def _expected_line(self, vpn: int, line: int) -> bytes:
        """The line's contents as of the last checkpoint (base image plus
        every shipped delta so far)."""
        start = line * LINE_SIZE
        data = self._base_image.get(vpn, bytes(4096))[start:start + LINE_SIZE]
        for record in self.records:
            shipped = record.deltas.get((vpn, line))
            if shipped is not None:
                data = shipped
        return data

    # -- recovery ---------------------------------------------------------------------

    def restore_view(self, up_to_epoch: int) -> Dict[int, bytes]:
        """Rebuild the memory image as of checkpoint *up_to_epoch* from the
        base image plus the shipped deltas (what a recovery would load)."""
        if not 0 <= up_to_epoch <= len(self.records):
            raise IndexError(f"epoch {up_to_epoch} out of range")
        image = {vpn: bytearray(data)
                 for vpn, data in self._base_image.items()}
        for record in self.records[:up_to_epoch]:
            for (vpn, line), payload in record.deltas.items():
                start = line * LINE_SIZE
                image[vpn][start:start + LINE_SIZE] = payload
        return {vpn: bytes(data) for vpn, data in image.items()}

    # -- reporting ----------------------------------------------------------------------

    @property
    def total_bytes_written(self) -> int:
        return sum(record.bytes_written for record in self.records)

    @property
    def total_page_granularity_bytes(self) -> int:
        return sum(record.page_granularity_bytes for record in self.records)

    @property
    def bandwidth_reduction(self) -> float:
        baseline = self.total_page_granularity_bytes
        if baseline == 0:
            return 0.0
        return 1.0 - self.total_bytes_written / baseline
