"""Technique 6: fine-grained metadata management (Section 5.3.4).

The Overlay Address Space doubles as *shadow memory*: the overlay of a
virtual page stores metadata about that page's data (taint bits,
protection bits, memcheck state...) instead of an alternate version of
the data.  Regular loads and stores see only the data; new ``metadata
load`` / ``metadata store`` instructions access the overlay.

Crucially, the OBitVector stays clear — metadata pages must NOT divert
regular accesses to the overlay — so the metadata lives in OMS segments
reachable through the OMT but invisible to the data path.  One metadata
byte shadows each 8-byte word by default (configurable), which is the
granularity taint-tracking and memcheck tools use.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..core.address import (LINE_SIZE, line_index, line_offset,
                            overlay_page_number, page_number)
from ..core.oms import ZERO_LINE

#: Data bytes shadowed by one metadata byte (one tag per 64-bit word).
WORD_BYTES = 8


@dataclass
class MetadataStats:
    metadata_loads: int = 0
    metadata_stores: int = 0
    shadow_lines: int = 0


class MetadataManager:
    """Word-granularity shadow memory in the Overlay Address Space."""

    def __init__(self, kernel, process):
        self.kernel = kernel
        self.process = process
        self.stats = MetadataStats()

    # -- the shadow line backing a data line -----------------------------------------

    def _shadow_entry(self, vpn: int, create: bool):
        system = self.kernel.system
        opn = overlay_page_number(self.process.asid, vpn)
        entry, _ = system.controller.omt_entry(opn, create=create,
                                               charge=False)
        return entry

    def _load_shadow_line(self, vpn: int, line: int) -> bytes:
        entry = self._shadow_entry(vpn, create=False)
        if entry is None or entry.segment is None or not entry.segment.has_line(line):
            return ZERO_LINE
        return entry.segment.read_line(line)

    def _store_shadow_line(self, vpn: int, line: int, payload: bytes) -> None:
        system = self.kernel.system
        entry = self._shadow_entry(vpn, create=True)
        if entry.segment is None:
            entry.segment = system.oms.allocate_segment(1)
            self.stats.shadow_lines += 0  # counted per line below
        if not entry.segment.has_line(line):
            self.stats.shadow_lines += 1
        entry.segment = system.oms.write_line(entry.segment, line, payload)
        # NOTE: the OBitVector is deliberately NOT set — regular accesses
        # must keep reading the data, not the metadata.

    # -- the metadata load/store instructions -----------------------------------------

    def metadata_store(self, vaddr: int, tag: int) -> None:
        """Set the metadata byte shadowing the word at *vaddr*."""
        if not 0 <= tag < 256:
            raise ValueError("metadata tag must fit one byte")
        vpn = page_number(vaddr)
        if vpn not in self.process.mappings:
            raise KeyError(f"VPN {vpn:#x} not mapped")
        line = line_index(vaddr)
        slot = line_offset(vaddr) // WORD_BYTES
        shadow = bytearray(self._load_shadow_line(vpn, line))
        shadow[slot] = tag
        self._store_shadow_line(vpn, line, bytes(shadow))
        self.stats.metadata_stores += 1

    def metadata_load(self, vaddr: int) -> int:
        """Read the metadata byte shadowing the word at *vaddr*."""
        vpn = page_number(vaddr)
        if vpn not in self.process.mappings:
            raise KeyError(f"VPN {vpn:#x} not mapped")
        line = line_index(vaddr)
        slot = line_offset(vaddr) // WORD_BYTES
        self.stats.metadata_loads += 1
        return self._load_shadow_line(vpn, line)[slot]

    # -- bulk helpers for tools built on top (taint tracking etc.) ------------------------

    def taint_range(self, vaddr: int, length: int, tag: int = 1) -> None:
        """Tag every word overlapping [vaddr, vaddr+length)."""
        start = (vaddr // WORD_BYTES) * WORD_BYTES
        end = vaddr + length
        word = start
        while word < end:
            self.metadata_store(word, tag)
            word += WORD_BYTES

    def is_tainted(self, vaddr: int, length: int) -> bool:
        """True if any word overlapping the range carries a non-zero tag."""
        start = (vaddr // WORD_BYTES) * WORD_BYTES
        word = start
        while word < vaddr + length:
            if self.metadata_load(word):
                return True
            word += WORD_BYTES
        return False

    @property
    def shadow_bytes(self) -> int:
        """Memory consumed by shadow lines (64B per shadowed data line,
        versus a full shadow page per data page in page-granularity
        schemes)."""
        return self.stats.shadow_lines * LINE_SIZE
