"""Technique 7: flexible super-pages (Section 5.3.5).

Super-pages cut TLB misses but force all-or-nothing management: to our
knowledge (the paper's), no system shares a 2MB super-page
copy-on-write, because one write would either copy 2MB or shatter the
mapping into 512 base PTEs.  Applying overlays *at the PD level* fixes
this: the super-page's OBitVector has one bit per 32KB segment (512
pages / 64 bits = 8 pages per bit), and a written segment is remapped to
the overlay — copying 8 pages instead of 512 — while the rest of the
super-page keeps its single TLB entry.

The same segment vector supports multiple protection domains within one
super-page (per-segment protections).

:class:`SuperpageManager` implements both the overlay scheme and the two
baselines (full copy; shattering) so the ablation bench can compare them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.obitvector import OBitVector
from ..core.page_table import SUPERPAGE_SPAN

#: 4KB pages covered by one bit of a super-page OBitVector.
PAGES_PER_SEGMENT = SUPERPAGE_SPAN // OBitVector.WIDTH  # 8 pages = 32KB


@dataclass
class SuperpageStats:
    superpages_shared: int = 0
    segment_copies: int = 0
    pages_copied: int = 0
    full_copies: int = 0
    shatters: int = 0


@dataclass
class _SharedSuperpage:
    base_vpn: int
    base_ppn: int
    #: per-sharer segment overlay state: asid -> (OBitVector, segment -> frames)
    overlays: Dict[int, Tuple[OBitVector, Dict[int, List[int]]]] = field(
        default_factory=dict)
    #: per-segment protection domain: segment -> "rw" | "ro" | "none"
    protections: Dict[int, str] = field(default_factory=dict)


class SuperpageManager:
    """Super-page sharing with segment-granularity overlays."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.stats = SuperpageStats()
        self._shared: Dict[Tuple[int, int], _SharedSuperpage] = {}

    # -- setup --------------------------------------------------------------------

    def map_superpage(self, process, base_vpn: int) -> int:
        """Allocate 512 contiguous frames and map them as one super-page."""
        if base_vpn % SUPERPAGE_SPAN:
            raise ValueError("super-page base must be 2MB-aligned")
        # A super-page needs a physically contiguous, 2MB-aligned frame run.
        frames = self.kernel.allocator.allocate_contiguous(
            SUPERPAGE_SPAN, align=SUPERPAGE_SPAN)
        base_ppn = frames[0]
        process.page_table.map_superpage(base_vpn, base_ppn)
        for i in range(SUPERPAGE_SPAN):
            process.mappings[base_vpn + i] = base_ppn + i
        return base_ppn

    def share_cow(self, parent, child, base_vpn: int) -> _SharedSuperpage:
        """Share parent's super-page with *child*, copy-on-write — the
        mapping the paper says no existing system supports."""
        pte = parent.page_table.superpage_entry(base_vpn)
        if pte is None:
            raise KeyError(f"no super-page at VPN {base_vpn:#x}")
        child.page_table.map_superpage(base_vpn, pte.ppn, writable=False,
                                       cow=True)
        parent.page_table.map_superpage(base_vpn, pte.ppn, writable=False,
                                        cow=True)
        for i in range(SUPERPAGE_SPAN):
            self.kernel.allocator.share(pte.ppn + i)
            child.mappings[base_vpn + i] = pte.ppn + i
        shared = _SharedSuperpage(base_vpn=base_vpn, base_ppn=pte.ppn)
        self._shared[(child.asid, base_vpn)] = shared
        self._shared[(parent.asid, base_vpn)] = shared
        self.stats.superpages_shared += 1
        return shared

    # -- the overlay write path ------------------------------------------------------

    def segment_of(self, vpn_offset: int) -> int:
        return vpn_offset // PAGES_PER_SEGMENT

    def write_page(self, process, vpn: int) -> int:
        """A write to page *vpn* of a shared super-page: copy only the
        32KB segment into the overlay.  Returns pages copied (0 when the
        segment was already private)."""
        base_vpn = vpn - (vpn % SUPERPAGE_SPAN)
        shared = self._shared.get((process.asid, base_vpn))
        if shared is None:
            raise KeyError(f"super-page at {base_vpn:#x} is not shared")
        vector, segments = shared.overlays.setdefault(
            process.asid, (OBitVector(), {}))
        segment = self.segment_of(vpn - base_vpn)
        if vector.is_set(segment):
            return 0  # segment already remapped to this sharer's overlay
        frames = []
        first_page = base_vpn + segment * PAGES_PER_SEGMENT
        for i in range(PAGES_PER_SEGMENT):
            src_ppn = shared.base_ppn + segment * PAGES_PER_SEGMENT + i
            dst_ppn = self.kernel.allocator.allocate()
            self.kernel.system.copy_page_via_dram(src_ppn, dst_ppn)
            process.mappings[first_page + i] = dst_ppn
            # Install a base-page PTE that overrides the super-page
            # mapping for this page (the "overlay at the PD level"): the
            # hardware walk now resolves these 8 pages privately while
            # the rest of the 2MB region keeps its single PD entry.
            process.page_table.map(first_page + i, dst_ppn,
                                   writable=True, cow=False)
            frames.append(dst_ppn)
        self.kernel.system.coherence.shootdown(process.asid, first_page)
        vector.set(segment)
        segments[segment] = frames
        self.stats.segment_copies += 1
        self.stats.pages_copied += PAGES_PER_SEGMENT
        return PAGES_PER_SEGMENT

    def resolve_page(self, process, vpn: int) -> int:
        """Physical frame backing *vpn*, honouring segment overlays."""
        base_vpn = vpn - (vpn % SUPERPAGE_SPAN)
        shared = self._shared.get((process.asid, base_vpn))
        if shared is None:
            pte = process.page_table.entry(vpn)
            if pte is None:
                raise KeyError(f"VPN {vpn:#x} not mapped")
            return pte.ppn
        offset = vpn - base_vpn
        state = shared.overlays.get(process.asid)
        if state is not None:
            vector, segments = state
            segment = self.segment_of(offset)
            if vector.is_set(segment):
                return segments[segment][offset % PAGES_PER_SEGMENT]
        return shared.base_ppn + offset

    # -- baselines for comparison ---------------------------------------------------------

    def baseline_full_copy(self, process, base_vpn: int) -> int:
        """Baseline A: copy the whole 2MB on first write (512 pages)."""
        shared = self._shared.get((process.asid, base_vpn))
        if shared is None:
            raise KeyError(f"super-page at {base_vpn:#x} is not shared")
        for i in range(SUPERPAGE_SPAN):
            dst = self.kernel.allocator.allocate()
            self.kernel.system.copy_page_via_dram(shared.base_ppn + i, dst)
            process.mappings[base_vpn + i] = dst
        self.stats.full_copies += 1
        self.stats.pages_copied += SUPERPAGE_SPAN
        return SUPERPAGE_SPAN

    def baseline_shatter(self, process, base_vpn: int) -> int:
        """Baseline B: shatter into 512 base PTEs (loses the single TLB
        entry; each page then does ordinary CoW)."""
        process.page_table.split_superpage(base_vpn)
        self.stats.shatters += 1
        return SUPERPAGE_SPAN

    # -- protection domains ------------------------------------------------------------------

    def set_segment_protection(self, process, base_vpn: int, segment: int,
                               protection: str) -> None:
        """Give one 32KB segment its own protection domain."""
        if protection not in ("rw", "ro", "none"):
            raise ValueError("protection must be rw/ro/none")
        shared = self._shared.get((process.asid, base_vpn))
        if shared is None:
            raise KeyError(f"super-page at {base_vpn:#x} is not shared")
        shared.protections[segment] = protection

    def check_access(self, process, vpn: int, write: bool) -> bool:
        """Would an access to *vpn* be permitted by segment protections?"""
        base_vpn = vpn - (vpn % SUPERPAGE_SPAN)
        shared = self._shared.get((process.asid, base_vpn))
        if shared is None:
            return True
        segment = self.segment_of(vpn - base_vpn)
        protection = shared.protections.get(segment, "rw")
        if protection == "none":
            return False
        if protection == "ro" and write:
            return False
        return True
