"""Technique 2: sparse data structures (Section 5.2).

The substrate lives in :mod:`repro.sparse`; this module is the
technique-level entry point re-exporting the overlay representation
(virtually dense matrix over a shared zero page, non-zero lines in
overlays) and the harness that evaluates it against CSR and the dense
baseline.

``repro.sparse`` sits *above* the techniques layer in the layer DAG
(simlint rule SL004), so the re-exports resolve lazily via module
``__getattr__`` (PEP 562): importing :mod:`repro.techniques` never drags
the upper tier in at import time, while
``from repro.techniques.sparse import run_spmv`` still works unchanged.

See :class:`repro.sparse.OverlaySparseMatrix` for the representation and
the *computation over overlays* model, and
:func:`repro.sparse.run_spmv` for the simulated SpMV kernel.
"""

from __future__ import annotations

import importlib

#: Re-exported name -> the upper-tier module that defines it.
_EXPORTS = {
    "OverlaySparseMatrix": "repro.sparse.overlay_rep",
    "SpMVResult": "repro.sparse.spmv",
    "ideal_memory_bytes": "repro.sparse.spmv",
    "run_spmv": "repro.sparse.spmv",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    return getattr(importlib.import_module(module), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
