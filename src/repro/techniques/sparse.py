"""Technique 2: sparse data structures (Section 5.2).

The substrate lives in :mod:`repro.sparse`; this module is the
technique-level entry point re-exporting the overlay representation
(virtually dense matrix over a shared zero page, non-zero lines in
overlays) and the harness that evaluates it against CSR and the dense
baseline.

See :class:`repro.sparse.OverlaySparseMatrix` for the representation and
the *computation over overlays* model, and
:func:`repro.sparse.run_spmv` for the simulated SpMV kernel.
"""

from ..sparse.overlay_rep import OverlaySparseMatrix
from ..sparse.spmv import SpMVResult, ideal_memory_bytes, run_spmv

__all__ = ["OverlaySparseMatrix", "SpMVResult", "ideal_memory_bytes",
           "run_spmv"]
