"""Technique 5: virtualizing speculation (Section 5.3.3).

Hardware speculation schemes (thread-level speculation, transactional
memory) traditionally buffer speculative updates in the cache, so the
eviction of a single speculatively-modified line aborts the speculation.
With overlays, speculative updates go to the page's overlay instead: an
evicted speculative line simply lands in the Overlay Memory Store, so
speculation is bounded by main memory, not by cache capacity
("potentially unbounded speculation" [2]).  Success commits the overlay;
failure discards it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

from ..core.address import page_number


class SpeculationError(RuntimeError):
    """Raised on invalid speculation lifecycle transitions."""


@dataclass
class SpeculationStats:
    begun: int = 0
    committed: int = 0
    aborted: int = 0
    speculative_lines_peak: int = 0


class SpeculationContext:
    """One speculative region over a process's address space.

    Usage::

        spec = SpeculationContext(kernel, process)
        spec.begin()
        ... speculative stores through kernel.system.write(...) ...
        spec.commit()   # or spec.abort()

    While the context is open, every page is in overlay-capture mode so
    stores become overlaying writes.  ``abort`` discards every overlay,
    restoring pre-speculation memory exactly; ``commit`` folds the
    overlays into the physical pages.
    """

    def __init__(self, kernel, process):
        self.kernel = kernel
        self.process = process
        self.stats = SpeculationStats()
        self._open = False
        self._touched_vpns: Set[int] = set()

    @property
    def is_open(self) -> bool:
        return self._open

    # -- lifecycle ----------------------------------------------------------------

    def begin(self) -> None:
        if self._open:
            raise SpeculationError("speculation already in progress")
        system = self.kernel.system
        for vpn in self.process.mappings:
            system.update_mapping(self.process.asid, vpn,
                                  cow=True, writable=False)
        self._open = True
        self._touched_vpns.clear()
        self.stats.begun += 1

    def write(self, vaddr: int, data: bytes) -> int:
        """A speculative store; returns its latency."""
        if not self._open:
            raise SpeculationError("no speculation in progress")
        latency = self.kernel.system.write(self.process.asid, vaddr, data)
        # A store spanning a page boundary touches every page it covers;
        # recording only the first would leave the tail page's overlay
        # alive across an abort (memory would not revert).
        last = page_number(vaddr + max(len(data), 1) - 1)
        for vpn in range(page_number(vaddr), last + 1):
            self._touched_vpns.add(vpn)
        self._note_peak()
        return latency

    def _note_peak(self) -> None:
        total = sum(self.kernel.system.overlay_line_count(self.process.asid, vpn)
                    for vpn in self._touched_vpns)
        self.stats.speculative_lines_peak = max(
            self.stats.speculative_lines_peak, total)

    def speculative_line_count(self) -> int:
        return sum(self.kernel.system.overlay_line_count(self.process.asid, vpn)
                   for vpn in self._touched_vpns)

    def commit(self) -> int:
        """Speculation succeeded: fold every overlay into its page."""
        latency = self._close("commit")
        self.stats.committed += 1
        return latency

    def abort(self) -> int:
        """Speculation failed: discard every overlay; memory reverts."""
        latency = self._close("discard")
        self.stats.aborted += 1
        return latency

    def _close(self, action: str) -> int:
        if not self._open:
            raise SpeculationError("no speculation in progress")
        system = self.kernel.system
        latency = 0
        system.hierarchy.flush_dirty()
        for vpn in self._touched_vpns:
            if system.overlay_line_count(self.process.asid, vpn):
                latency += system.promote(self.process.asid, vpn, action)
        for vpn in self.process.mappings:
            system.update_mapping(self.process.asid, vpn,
                                  cow=False, writable=True)
        self._open = False
        return latency
