"""Technique 3: fine-grained deduplication (Section 5.3.1).

The Difference Engine [23] observation: across processes/VMs many pages
contain *mostly* the same data.  Software patching makes accessing such
pages slow; HICAMP [11] redesigns the whole memory system.  With
overlays, similar pages simply share one base physical page, and each
page's differing cache lines live in its overlay — accesses need no
software patching because the overlay semantics apply the "patch" on
every access, transparently.

:class:`DeduplicationManager` scans mapped pages, clusters candidates by
sampled line hashes, and deduplicates any page whose distance to the
cluster's base page is at most ``max_diff_lines`` cache lines.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.address import LINES_PER_PAGE, PAGE_SIZE


@dataclass
class DedupStats:
    pages_scanned: int = 0
    pages_deduplicated: int = 0
    frames_freed: int = 0
    overlay_lines_created: int = 0

    @property
    def bytes_saved(self) -> int:
        """Frame bytes freed minus overlay line bytes spent."""
        return self.frames_freed * PAGE_SIZE - self.overlay_lines_created * 64


class DeduplicationManager:
    """Difference-engine-style dedup over the overlay framework."""

    def __init__(self, kernel, max_diff_lines: int = 16,
                 sample_lines: Tuple[int, ...] = (0, 21, 42, 63)):
        if not 0 <= max_diff_lines <= LINES_PER_PAGE:
            raise ValueError("max_diff_lines must be within 0..64")
        self.kernel = kernel
        self.max_diff_lines = max_diff_lines
        self.sample_lines = sample_lines
        self.stats = DedupStats()
        #: base ppn -> list of (asid, vpn) deduplicated onto it.
        self.families: Dict[int, List[Tuple[int, int]]] = {}

    # -- scanning ---------------------------------------------------------------

    def _page_lines(self, asid: int, vpn: int) -> List[bytes]:
        system = self.kernel.system
        return [system.line_bytes(asid, vpn, line)
                for line in range(LINES_PER_PAGE)]

    def _signature(self, lines: List[bytes]) -> bytes:
        hasher = hashlib.sha1()
        for index in self.sample_lines:
            hasher.update(lines[index])
        return hasher.digest()

    @staticmethod
    def _diff_lines(lines: List[bytes], base_lines: List[bytes]) -> List[int]:
        return [i for i in range(LINES_PER_PAGE)
                if lines[i] != base_lines[i]]

    # -- the dedup pass ----------------------------------------------------------

    def deduplicate(self, pages: List[Tuple[int, int]]) -> int:
        """Deduplicate among ``[(asid, vpn), ...]``; returns pages merged.

        The first page of each similarity cluster becomes the base; later
        pages that differ in at most ``max_diff_lines`` lines are remapped
        onto the base frame with their differences as overlay lines.
        """
        system = self.kernel.system
        clusters: Dict[bytes, Tuple[int, int, List[bytes]]] = {}
        merged = 0
        for asid, vpn in pages:
            self.stats.pages_scanned += 1
            lines = self._page_lines(asid, vpn)
            signature = self._signature(lines)
            if signature not in clusters:
                clusters[signature] = (asid, vpn, lines)
                continue
            base_asid, base_vpn, base_lines = clusters[signature]
            diff = self._diff_lines(lines, base_lines)
            if len(diff) > self.max_diff_lines:
                continue
            self._merge(asid, vpn, lines, base_asid, base_vpn, diff)
            merged += 1
        return merged

    def _merge(self, asid: int, vpn: int, lines: List[bytes],
               base_asid: int, base_vpn: int, diff: List[int]) -> None:
        system = self.kernel.system
        base_ppn = system.page_tables[base_asid].entry(base_vpn).ppn
        old_ppn = system.page_tables[asid].entry(vpn).ppn
        if old_ppn == base_ppn:
            return  # already sharing the same frame

        # Remap onto the base frame, copy-on-write so later divergence
        # lands in the overlay too.
        self.kernel.allocator.share(base_ppn)
        system.update_mapping(asid, vpn, ppn=base_ppn, cow=True,
                              writable=False)
        system.update_mapping(base_asid, base_vpn, cow=True, writable=False)
        process = self.kernel.processes.get(asid)
        if process is not None:
            process.mappings[vpn] = base_ppn
        users = self.kernel.frame_users.get(old_ppn)
        if users is not None:
            users.discard((asid, vpn))
        self.kernel.frame_users.setdefault(base_ppn, set()).add((asid, vpn))

        # Differences become overlay lines of the deduplicated page.
        for line in diff:
            system.install_overlay_line(asid, vpn, line, lines[line])
            self.stats.overlay_lines_created += 1

        if self.kernel.allocator.release(old_ppn) == 0:
            self.stats.frames_freed += 1
        self.families.setdefault(base_ppn, []).append((asid, vpn))
        self.stats.pages_deduplicated += 1
