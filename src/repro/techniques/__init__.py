"""The seven fine-grained memory management techniques of Table 1."""

from .checkpoint import CheckpointManager, CheckpointRecord
from .dedup import DeduplicationManager, DedupStats
from .metadata import MetadataManager, MetadataStats
from .overlay_on_write import OverlayOnWritePolicy, OverlayOnWriteStats
from .speculation import SpeculationContext, SpeculationError, SpeculationStats
from .superpage import PAGES_PER_SEGMENT, SuperpageManager, SuperpageStats

__all__ = ["CheckpointManager", "CheckpointRecord", "DeduplicationManager",
           "DedupStats", "MetadataManager", "MetadataStats",
           "OverlayOnWritePolicy", "OverlayOnWriteStats",
           "PAGES_PER_SEGMENT", "SpeculationContext", "SpeculationError",
           "SpeculationStats", "SuperpageManager", "SuperpageStats"]
