"""Figure 10: SpMV with page overlays vs CSR across matrices sorted by L.

The paper runs one SpMV iteration over 87 UF Sparse Matrix Collection
matrices and plots, per matrix, the overlay representation's performance
and memory capacity normalised to CSR, with the x-axis sorted by the
non-zero value locality L.  Its headline points:

* at L ≈ 1 overlays consume ~4.8x CSR's memory and run ~1.7x slower;
* at L = 8 overlays save 34% memory and run ~1.9x faster;
* the crossover sits around L ≈ 4.5.

This harness sweeps synthetic matrices across L ∈ [1, 8] (standing in
for the UF collection — see DESIGN.md), simulates one SpMV iteration of
each representation on a fresh machine, and reports the same normalised
series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..sparse.matrix_gen import locality_sweep
from ..sparse.pattern import MatrixPattern
from ..sparse.spmv import run_spmv

#: Default matrix geometry: wide matrices so the x-vector gather exceeds
#: the cache hierarchy, as with the paper's >=1.5M-non-zero matrices.
DEFAULT_ROWS = 64
DEFAULT_COLS = 524288
DEFAULT_NNZ = 8000


@dataclass
class Figure10Point:
    """One matrix's normalised overlay-vs-CSR results."""

    matrix: str
    locality: float
    nnz: int
    relative_performance: float   # CSR cycles / overlay cycles (>1: overlay wins)
    relative_memory: float        # overlay bytes / CSR bytes (<1: overlay wins)
    csr_cycles: int
    overlay_cycles: int


def run_figure10(matrix_count: int = 16, rows: int = DEFAULT_ROWS,
                 cols: int = DEFAULT_COLS, nnz: int = DEFAULT_NNZ,
                 seed: int = 7, repeats: int = 1,
                 matrices: Optional[List[MatrixPattern]] = None) -> List[Figure10Point]:
    """Run the Figure 10 sweep; points are ordered by increasing L.

    ``repeats`` > 1 averages each point over several independently
    generated matrices at the same L (the paper has 87 real matrices to
    smooth its curve; averaging seeds plays the same role here).
    """
    if matrices is not None:
        groups = [[m] for m in sorted(matrices, key=lambda m: m.locality)]
    else:
        sweeps = [locality_sweep(matrix_count, rows=rows, cols=cols,
                                 nnz=nnz, seed=seed + 101 * r)
                  for r in range(max(1, repeats))]
        groups = [[sweep[i] for sweep in sweeps]
                  for i in range(matrix_count)]
    points = []
    for group in groups:
        csr_cycles = overlay_cycles = 0
        perf_sum = memory_sum = 0.0
        for pattern in group:
            csr = run_spmv(pattern, "csr")
            overlay = run_spmv(pattern, "overlay")
            csr_cycles += csr.cycles
            overlay_cycles += overlay.cycles
            perf_sum += csr.cycles / overlay.cycles
            memory_sum += overlay.memory_bytes / csr.memory_bytes
        first = group[0]
        count = len(group)
        points.append(Figure10Point(
            matrix=first.name,
            locality=sum(m.locality for m in group) / count,
            nnz=first.nnz,
            relative_performance=perf_sum / count,
            relative_memory=memory_sum / count,
            csr_cycles=csr_cycles // count,
            overlay_cycles=overlay_cycles // count))
    points.sort(key=lambda p: p.locality)
    return points


def crossover_locality(points: List[Figure10Point]) -> Optional[float]:
    """L of the first point (in increasing-L order) from which overlays
    win on performance and keep winning — the paper's L ≈ 4.5."""
    for i, point in enumerate(points):
        if all(p.relative_performance >= 1.0 for p in points[i:]):
            return point.locality
    return None


def format_figure10(points: List[Figure10Point]) -> str:
    lines = ["Figure 10: SpMV, page overlays normalised to CSR "
             "(performance >1 and memory <1 favour overlays)",
             f"{'matrix':<12} {'L':>5} {'nnz':>7} {'rel perf':>9} "
             f"{'rel memory':>11}"]
    for p in points:
        lines.append(f"{p.matrix:<12} {p.locality:>5.2f} {p.nnz:>7d} "
                     f"{p.relative_performance:>9.2f} {p.relative_memory:>11.2f}")
    cross = crossover_locality(points)
    lines.append(f"performance crossover at L ~ "
                 f"{cross:.2f}" if cross is not None else
                 "no stable performance crossover found")
    wins = [p for p in points if p.relative_performance > 1.0]
    lines.append(f"overlays outperform CSR on {len(wins)}/{len(points)} matrices")
    return "\n".join(lines)
