"""Plain-text reporting helpers: ASCII bar charts and series plots for
the figure harnesses (everything prints to a terminal; no plotting
dependencies), plus stats aggregation built on the engine registry."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

BAR_WIDTH = 40

#: Eight-level block ramp used by :func:`sparkline`.
SPARK_TICKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """A one-line unicode sparkline of *values*.

    Values are scaled to the series' own min..max (a flat series renders
    as all-low ticks); when *width* is given and the series is longer,
    it is downsampled by bucketing (each tick shows its bucket's mean).
    Non-finite values render as spaces.
    """
    series = [float(v) for v in values]
    if not series:
        return ""
    if width is not None and width > 0 and len(series) > width:
        bucketed = []
        for i in range(width):
            lo = i * len(series) // width
            hi = max(lo + 1, (i + 1) * len(series) // width)
            bucket = series[lo:hi]
            bucketed.append(sum(bucket) / len(bucket))
        series = bucketed
    finite = [v for v in series if v == v and v not in (float("inf"),
                                                        float("-inf"))]
    if not finite:
        return " " * len(series)
    low, high = min(finite), max(finite)
    span = high - low
    ticks = []
    for value in series:
        if value != value or value in (float("inf"), float("-inf")):
            ticks.append(" ")
            continue
        if span == 0:
            ticks.append(SPARK_TICKS[0])
            continue
        level = int((value - low) / span * (len(SPARK_TICKS) - 1))
        ticks.append(SPARK_TICKS[level])
    return "".join(ticks)


def aggregate_core_stats(runs: Sequence) -> "object":
    """Merge per-core/per-run :class:`~repro.cpu.core.CoreStats` into one
    combined block (raw counters sum; CPI/IPC stay derived)."""
    from ..cpu.core import CoreStats
    total = CoreStats()
    for stats in runs:
        total.merge(stats)
    return total


def stats_report(system, indent: str = "  ") -> str:
    """The whole machine's statistics as an indented component tree
    (one traversal of the system's engine registry)."""
    return system.stats_scope.format_tree(indent)


def bar_chart(rows: Sequence[Tuple[str, float]], title: str = "",
              unit: str = "", width: int = BAR_WIDTH) -> str:
    """Horizontal bar chart: one (label, value) per row."""
    if not rows:
        return title
    # A non-positive peak (all-zero or all-negative rows) must not flip
    # or explode the bar scaling; bars for values <= 0 render empty.
    peak = max(value for _, value in rows)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label, _ in rows)
    lines = [title] if title else []
    for label, value in rows:
        bar = "#" * max(1 if value > 0 else 0,
                        round(width * value / peak) if value > 0 else 0)
        lines.append(f"{label:<{label_width}} |{bar:<{width}} "
                     f"{value:,.2f}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(rows: Sequence[Tuple[str, float, float]],
                      series: Tuple[str, str], title: str = "",
                      unit: str = "", width: int = BAR_WIDTH) -> str:
    """Two-series bar chart: (label, value_a, value_b) per row."""
    if not rows:
        return title
    peak = max(max(a, b) for _, a, b in rows)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label, _, _ in rows)
    lines = [title] if title else []
    lines.append(f"{'':<{label_width}}  # = {series[0]}, = = {series[1]}")
    for label, a, b in rows:
        bar_a = "#" * max(1 if a > 0 else 0,
                          round(width * a / peak) if a > 0 else 0)
        bar_b = "=" * max(1 if b > 0 else 0,
                          round(width * b / peak) if b > 0 else 0)
        lines.append(f"{label:<{label_width}} |{bar_a:<{width}} {a:,.2f}{unit}")
        lines.append(f"{'':<{label_width}} |{bar_b:<{width}} {b:,.2f}{unit}")
    return "\n".join(lines)


def series_plot(points: Sequence[Tuple[float, float]], title: str = "",
                x_label: str = "x", y_label: str = "y",
                height: int = 12, width: int = 60,
                y_reference: Optional[float] = None) -> str:
    """A scatter/line plot in ASCII, with an optional horizontal
    reference line (e.g. the y=1.0 crossover of Figure 10)."""
    if not points:
        return title
    # Degenerate canvases (height < 2 rows, or a width too narrow for
    # the axis caption) would divide by zero / feed negative widths to
    # the format spec; clamp instead of crashing.
    height = max(2, height)
    width = max(18, width)
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    y_min = min(ys + ([y_reference] if y_reference is not None else []))
    y_max = max(ys + ([y_reference] if y_reference is not None else []))
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = min(xs), max(xs)
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    def to_col(x):
        return round((x - x_min) / (x_max - x_min) * (width - 1))
    def to_row(y):
        return (height - 1) - round((y - y_min) / (y_max - y_min)
                                    * (height - 1))
    if y_reference is not None:
        ref_row = to_row(y_reference)
        for col in range(width):
            grid[ref_row][col] = "-"
    for x, y in points:
        grid[to_row(y)][to_col(x)] = "*"

    lines = [title] if title else []
    for i, row in enumerate(grid):
        y_val = y_max - i * (y_max - y_min) / (height - 1)
        lines.append(f"{y_val:8.2f} |{''.join(row)}")
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(f"{'':9}{x_min:<8.2f}{x_label:^{width - 16}}{x_max:>8.2f}")
    lines.append(f"y: {y_label}")
    return "\n".join(lines)


def table(headers: Sequence[str], rows: Sequence[Sequence[object]],
          title: str = "") -> str:
    """A simple aligned text table."""
    cells = [[str(c) for c in row] for row in rows]
    # Ragged rows (shorter than the header) must not raise; missing
    # cells render empty.
    widths = [max([len(h)] + [len(row[i]) for row in cells
                              if i < len(row)])
              for i, h in enumerate(headers)]
    lines = [title] if title else []
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        padded = list(row[:len(widths)]) + [""] * (len(widths) - len(row))
        lines.append("  ".join(c.ljust(w) for c, w in zip(padded, widths)))
    return "\n".join(lines)
