"""Section 5.2's sparsity sweep: overlays vs the dense representation.

The paper: "our simulations using randomly-generated sparse matrices
with varying levels of sparsity (0% to 100%) show that our representation
outperforms the dense-matrix representation for all sparsity levels —
the performance gap increases linearly with the fraction of zero cache
lines in the matrix."

This harness sweeps the zero-line fraction on square matrices and
simulates one SpMV iteration of the overlay and dense representations.

Each point is seeded independently (``seed + index``), so the sweep
decomposes into per-point shards: pass ``fleet_workers`` to run them
through :func:`repro.fleet.run_fleet` with content-addressed caching
and ``resume`` support; the merged point list is identical to the
serial path's.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional

from ..engine.rng import resolve_seed
from ..fleet.runner import run_fleet
from ..fleet.shards import Shard
from ..sparse.matrix_gen import generate_with_locality
from ..sparse.pattern import MatrixPattern, VALUES_PER_LINE
from ..sparse.spmv import run_spmv


@dataclass
class SparsityPoint:
    zero_line_fraction: float
    dense_cycles: int
    overlay_cycles: int
    dense_memory: int
    overlay_memory: int

    @property
    def speedup(self) -> float:
        """Dense cycles / overlay cycles (>1: overlays win).

        A zero-cycle overlay run (degenerate sweep inputs) reports
        ``inf`` rather than raising — sweeps must survive every point.
        """
        if self.overlay_cycles == 0:
            return float("inf") if self.dense_cycles else 0.0
        return self.dense_cycles / self.overlay_cycles


def _matrix_with_zero_fraction(rows: int, cols: int, zero_fraction: float,
                               seed: int) -> MatrixPattern:
    total_lines = rows * cols // VALUES_PER_LINE
    nonzero_lines = max(1, round(total_lines * (1.0 - zero_fraction)))
    # Fully populated non-zero lines (L = 8): isolates the zero-line
    # skipping effect, which is what the sweep studies.
    return generate_with_locality(rows, cols,
                                  nnz=nonzero_lines * VALUES_PER_LINE,
                                  locality=float(VALUES_PER_LINE),
                                  seed=seed, run_length=1,
                                  name=f"zf{zero_fraction:.2f}")


def _point(rows: int, cols: int, fraction: float,
           matrix_seed: int) -> SparsityPoint:
    """Simulate one sweep point (shared by the serial and fleet paths)."""
    pattern = _matrix_with_zero_fraction(rows, cols, fraction,
                                         seed=matrix_seed)
    dense = run_spmv(pattern, "dense")
    overlay = run_spmv(pattern, "overlay")
    return SparsityPoint(
        zero_line_fraction=fraction,
        dense_cycles=dense.cycles,
        overlay_cycles=overlay.cycles,
        dense_memory=dense.memory_bytes,
        overlay_memory=overlay.memory_bytes)


def sparsity_shards(rows: int, cols: int, fractions: List[float],
                    resolved_seed: int) -> List[Shard]:
    """One ``sparsity_point`` shard per zero-line fraction."""
    from ..obs.manifest import RunManifest
    manifest = RunManifest.create(
        "sparsity_sweep", seed=resolved_seed).deterministic_dict()
    return [Shard(kind="sparsity_point", index=index,
                  params={"rows": rows, "cols": cols, "fraction": fraction,
                          "matrix_seed": resolved_seed + index},
                  manifest=manifest)
            for index, fraction in enumerate(fractions)]


def run_sparsity_point_shard(shard: Shard) -> Dict[str, Any]:
    """Execute one sweep shard (the ``sparsity_point`` fleet runner)."""
    params = shard.params
    return asdict(_point(params["rows"], params["cols"],
                         params["fraction"], params["matrix_seed"]))


def run_sparsity_sweep(rows: int = 128, cols: int = 128,
                       fractions: Optional[List[float]] = None,
                       seed: Optional[int] = None,
                       fleet_workers: Optional[int] = None,
                       resume: bool = False, cache_dir=None,
                       fleet_summary: Optional[Dict[str, Any]] = None
                       ) -> List[SparsityPoint]:
    """Sweep the zero-line fraction from dense (0.0) to very sparse.

    Point *i* uses a matrix seeded ``seed + i`` (default base:
    ``SystemConfig.rng_seed + 5``, the sweep's historical stream), so
    repeated sweeps are byte-identical.

    With *fleet_workers* set (``0`` = auto-resolve), points shard
    through :func:`repro.fleet.run_fleet` — cached under *cache_dir*
    (default ``<results>/fleet/sparsity_sweep``), reused when *resume*
    is set — and merge into the identical point list; pass a dict as
    *fleet_summary* to receive the hit/miss counters.
    """
    seed = resolve_seed(seed, stream=5)
    if fractions is None:
        fractions = [0.0, 0.25, 0.5, 0.75, 0.9, 0.97]
    if fleet_workers is None:
        return [_point(rows, cols, fraction, seed + index)
                for index, fraction in enumerate(fractions)]
    if cache_dir is None:
        from ..obs.export import default_results_dir
        cache_dir = default_results_dir() / "fleet" / "sparsity_sweep"
    shards = sparsity_shards(rows, cols, list(fractions), seed)
    result = run_fleet(shards, workers=fleet_workers, resume=resume,
                       cache_dir=cache_dir)
    if fleet_summary is not None:
        fleet_summary.update(result.summary.to_dict())
    return [SparsityPoint(**payload) for payload in result.payloads]


def format_sweep(points: List[SparsityPoint]) -> str:
    lines = ["Section 5.2 sparsity sweep: overlays vs dense representation",
             f"{'zero-line %':>11} {'dense cyc':>10} {'overlay cyc':>11} "
             f"{'speedup':>8} {'mem ratio':>9}"]
    for p in points:
        mem_ratio = (f"{p.overlay_memory / p.dense_memory:>9.2f}"
                     if p.dense_memory else f"{'n/a':>9}")
        lines.append(f"{p.zero_line_fraction:>10.0%} {p.dense_cycles:>10d} "
                     f"{p.overlay_cycles:>11d} {p.speedup:>8.2f} "
                     f"{mem_ratio}")
    monotone = all(points[i].speedup <= points[i + 1].speedup + 0.15
                   for i in range(len(points) - 1))
    lines.append("speedup grows with the zero-line fraction: "
                 + ("yes" if monotone else "no"))
    return "\n".join(lines)
