"""Section 5.2's sparsity sweep: overlays vs the dense representation.

The paper: "our simulations using randomly-generated sparse matrices
with varying levels of sparsity (0% to 100%) show that our representation
outperforms the dense-matrix representation for all sparsity levels —
the performance gap increases linearly with the fraction of zero cache
lines in the matrix."

This harness sweeps the zero-line fraction on square matrices and
simulates one SpMV iteration of the overlay and dense representations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..engine.rng import resolve_seed
from ..sparse.matrix_gen import generate_with_locality
from ..sparse.pattern import MatrixPattern, VALUES_PER_LINE
from ..sparse.spmv import run_spmv


@dataclass
class SparsityPoint:
    zero_line_fraction: float
    dense_cycles: int
    overlay_cycles: int
    dense_memory: int
    overlay_memory: int

    @property
    def speedup(self) -> float:
        """Dense cycles / overlay cycles (>1: overlays win).

        A zero-cycle overlay run (degenerate sweep inputs) reports
        ``inf`` rather than raising — sweeps must survive every point.
        """
        if self.overlay_cycles == 0:
            return float("inf") if self.dense_cycles else 0.0
        return self.dense_cycles / self.overlay_cycles


def _matrix_with_zero_fraction(rows: int, cols: int, zero_fraction: float,
                               seed: int) -> MatrixPattern:
    total_lines = rows * cols // VALUES_PER_LINE
    nonzero_lines = max(1, round(total_lines * (1.0 - zero_fraction)))
    # Fully populated non-zero lines (L = 8): isolates the zero-line
    # skipping effect, which is what the sweep studies.
    return generate_with_locality(rows, cols,
                                  nnz=nonzero_lines * VALUES_PER_LINE,
                                  locality=float(VALUES_PER_LINE),
                                  seed=seed, run_length=1,
                                  name=f"zf{zero_fraction:.2f}")


def run_sparsity_sweep(rows: int = 128, cols: int = 128,
                       fractions: Optional[List[float]] = None,
                       seed: Optional[int] = None) -> List[SparsityPoint]:
    """Sweep the zero-line fraction from dense (0.0) to very sparse.

    Point *i* uses a matrix seeded ``seed + i`` (default base:
    ``SystemConfig.rng_seed + 5``, the sweep's historical stream), so
    repeated sweeps are byte-identical.
    """
    seed = resolve_seed(seed, stream=5)
    if fractions is None:
        fractions = [0.0, 0.25, 0.5, 0.75, 0.9, 0.97]
    points = []
    for index, fraction in enumerate(fractions):
        pattern = _matrix_with_zero_fraction(rows, cols, fraction,
                                             seed=seed + index)
        dense = run_spmv(pattern, "dense")
        overlay = run_spmv(pattern, "overlay")
        points.append(SparsityPoint(
            zero_line_fraction=fraction,
            dense_cycles=dense.cycles,
            overlay_cycles=overlay.cycles,
            dense_memory=dense.memory_bytes,
            overlay_memory=overlay.memory_bytes))
    return points


def format_sweep(points: List[SparsityPoint]) -> str:
    lines = ["Section 5.2 sparsity sweep: overlays vs dense representation",
             f"{'zero-line %':>11} {'dense cyc':>10} {'overlay cyc':>11} "
             f"{'speedup':>8} {'mem ratio':>9}"]
    for p in points:
        mem_ratio = (f"{p.overlay_memory / p.dense_memory:>9.2f}"
                     if p.dense_memory else f"{'n/a':>9}")
        lines.append(f"{p.zero_line_fraction:>10.0%} {p.dense_cycles:>10d} "
                     f"{p.overlay_cycles:>11d} {p.speedup:>8.2f} "
                     f"{mem_ratio}")
    monotone = all(points[i].speedup <= points[i + 1].speedup + 0.15
                   for i in range(len(points) - 1))
    lines.append("speedup grows with the zero-line fraction: "
                 + ("yes" if monotone else "no"))
    return "\n".join(lines)
