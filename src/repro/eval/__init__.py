"""Experiment harnesses regenerating every table and figure of the
paper's evaluation (Section 5), plus the design ablations of DESIGN.md."""

from .config import DEFAULT_CONFIG, SystemConfig
from .fork_experiment import (BenchmarkComparison, PolicyRun, format_figure8,
                              format_figure9, run_benchmark, run_policy,
                              run_suite, summarize)
from .granularity_experiment import (BLOCK_SIZES, Figure11Point,
                                     format_figure11, mean_overhead,
                                     run_figure11)
from .hardware_cost import (HardwareCost, compute_hardware_cost,
                            format_hardware_cost)
from .remap_latency import (RemapLatency, format_remap_latency,
                            measure_remap_latency)
from .sparsity_sweep import (SparsityPoint, format_sweep,
                             run_sparsity_point_shard, run_sparsity_sweep,
                             sparsity_shards)
from .spmv_experiment import (Figure10Point, crossover_locality,
                              format_figure10, run_figure10)

__all__ = ["BLOCK_SIZES", "BenchmarkComparison", "DEFAULT_CONFIG",
           "Figure10Point", "Figure11Point", "HardwareCost", "PolicyRun",
           "RemapLatency", "SparsityPoint", "SystemConfig",
           "compute_hardware_cost", "crossover_locality", "format_figure10",
           "format_figure11", "format_figure8", "format_figure9",
           "format_hardware_cost", "format_remap_latency", "format_sweep",
           "mean_overhead", "run_benchmark", "run_figure10", "run_figure11",
           "run_policy", "run_sparsity_point_shard", "run_sparsity_sweep",
           "run_suite", "sparsity_shards", "summarize"]
