"""Figure 11: memory overhead of sparse storage vs management granularity.

For each matrix, the paper compares the memory needed to store it when
managed at block sizes from 16B to 4KB (each non-zero block stored in
full), normalised to the "Ideal" that stores only the non-zero values.
CSR is plotted alongside.  Headline: page-granularity (4KB) management
costs ~53x Ideal on average, while 64B-line management is close to CSR —
the case for fine-grained memory management, and the observation that
sub-64B blocks would beat CSR on even more matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..sparse.matrix_gen import locality_sweep
from ..sparse.pattern import MatrixPattern
from ..sparse.spmv import ideal_memory_bytes
from ..sparse.csr import CSRMatrix

#: The granularities of Figure 11.
BLOCK_SIZES = (16, 32, 64, 256, 1024, 4096)


@dataclass
class Figure11Point:
    """One matrix's overhead at each granularity, normalised to Ideal."""

    matrix: str
    locality: float
    csr_overhead: float
    block_overheads: Dict[int, float] = field(default_factory=dict)

    def finest_block_beating_csr(self) -> Optional[int]:
        """Largest block size whose overhead is below CSR's, if any."""
        winning = [size for size, overhead in self.block_overheads.items()
                   if overhead < self.csr_overhead]
        return max(winning) if winning else None


def run_figure11(matrix_count: int = 16, rows: int = 1024, cols: int = 1024,
                 nnz: int = 4000, seed: int = 7,
                 matrices: Optional[List[MatrixPattern]] = None) -> List[Figure11Point]:
    """Compute the Figure 11 series (pure capacity analysis, no timing)."""
    if matrices is None:
        matrices = locality_sweep(matrix_count, rows=rows, cols=cols,
                                  nnz=nnz, seed=seed)
    points = []
    for pattern in sorted(matrices, key=lambda m: m.locality):
        ideal = ideal_memory_bytes(pattern)
        csr = CSRMatrix(pattern).memory_bytes()
        overheads = {}
        for block in BLOCK_SIZES:
            stored = pattern.nonzero_blocks(block) * block
            overheads[block] = stored / ideal
        points.append(Figure11Point(matrix=pattern.name,
                                    locality=pattern.locality,
                                    csr_overhead=csr / ideal,
                                    block_overheads=overheads))
    return points


def mean_overhead(points: List[Figure11Point], block: int) -> float:
    return sum(p.block_overheads[block] for p in points) / len(points)


def format_figure11(points: List[Figure11Point]) -> str:
    header = (f"{'matrix':<12} {'L':>5} {'CSR':>6} "
              + " ".join(f"{size:>6d}" for size in BLOCK_SIZES))
    lines = ["Figure 11: memory overhead over Ideal (stores only non-zero "
             "values) by management granularity", header]
    for p in points:
        row = (f"{p.matrix:<12} {p.locality:>5.2f} {p.csr_overhead:>6.2f} "
               + " ".join(f"{p.block_overheads[size]:>6.2f}"
                          for size in BLOCK_SIZES))
        lines.append(row)
    lines.append("mean overhead: "
                 + ", ".join(f"{size}B={mean_overhead(points, size):.1f}x"
                             for size in BLOCK_SIZES))
    beats_64 = sum(1 for p in points
                   if p.block_overheads[64] < p.csr_overhead)
    beats_16 = sum(1 for p in points
                   if p.block_overheads[16] < p.csr_overhead)
    lines.append(f"64B management beats CSR on {beats_64}/{len(points)} "
                 f"matrices; 16B on {beats_16}/{len(points)} (finer is better)")
    return "\n".join(lines)
