"""Table 2 configuration — re-exported from :mod:`repro.config`.

The dataclass lives at the package root so the core machinery can build
itself from it without the core -> eval layering inversion; experiment
code historically imports it from here.
"""

from ..config import DEFAULT_CONFIG, SystemConfig

__all__ = ["DEFAULT_CONFIG", "SystemConfig"]
