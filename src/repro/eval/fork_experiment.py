"""Figures 8 and 9: fork with copy-on-write vs overlay-on-write.

The paper's methodology (Section 5.1): warm up the benchmark, execute a
``fork`` (the child idles), then run the parent through the measurement
window, reporting the additional memory the parent consumed (Figure 8)
and its cycles per instruction (Figure 9) under each mechanism.

This harness follows the same script on the synthetic SPEC-like
workloads, scaled down ~1000x.  Dirty overlay/cache lines are flushed
before measuring memory so lazy OMS allocations (which real eviction
traffic would have forced during a 300M-instruction window) are
materialised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..cpu.core import Core
from ..osmodel.cow import CopyOnWritePolicy
from ..osmodel.kernel import Kernel
from ..techniques.overlay_on_write import OverlayOnWritePolicy
from ..workloads.spec_like import (BENCHMARKS, TYPE_ORDER, BenchmarkProfile,
                                   measurement_trace, warmup_trace)

BASE_VPN = 0x400

POLICIES = ("copy-on-write", "overlay-on-write")


@dataclass
class PolicyRun:
    """One benchmark under one CoW policy."""

    benchmark: str
    type_id: int
    policy: str
    additional_memory_bytes: int
    cpi: float
    instructions: int
    cycles: int

    @property
    def additional_memory_mb(self) -> float:
        return self.additional_memory_bytes / (1024 * 1024)


@dataclass
class BenchmarkComparison:
    """Copy-on-write vs overlay-on-write for one benchmark."""

    benchmark: str
    type_id: int
    cow: PolicyRun
    oow: PolicyRun

    @property
    def memory_reduction(self) -> float:
        if self.cow.additional_memory_bytes == 0:
            return 0.0
        return 1.0 - (self.oow.additional_memory_bytes
                      / self.cow.additional_memory_bytes)

    @property
    def performance_improvement(self) -> float:
        if self.cow.cpi == 0:
            return 0.0
        return 1.0 - self.oow.cpi / self.cow.cpi


def run_policy(profile: BenchmarkProfile, policy: str, scale: float = 1.0,
               warmup_accesses: int = 3000, seed: int = 0) -> PolicyRun:
    """Run one benchmark under one policy on a fresh machine."""
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}")
    kernel = Kernel()
    parent = kernel.create_process()
    kernel.mmap(parent, BASE_VPN, profile.footprint_pages, fill=b"w")
    if policy == "copy-on-write":
        kernel.install_cow_policy(CopyOnWritePolicy(kernel))
    else:
        kernel.install_cow_policy(OverlayOnWritePolicy(kernel))

    core = Core(kernel.system, parent.asid)
    core.run(warmup_trace(profile, BASE_VPN, accesses=warmup_accesses,
                          seed=seed + 1))

    kernel.fork(parent)  # child idles, as in the paper
    marker = kernel.memory_marker()

    trace = measurement_trace(profile, BASE_VPN, scale=scale, seed=seed + 2)
    stats = core.run(trace)

    # Materialise lazy overlay allocations that eviction traffic would
    # have forced over a full-length run.
    kernel.system.hierarchy.flush_dirty()
    additional = kernel.additional_memory_since(marker)

    return PolicyRun(benchmark=profile.name, type_id=profile.type_id,
                     policy=policy, additional_memory_bytes=additional,
                     cpi=stats.cpi, instructions=stats.instructions,
                     cycles=stats.cycles)


def run_benchmark(name: str, scale: float = 1.0,
                  warmup_accesses: int = 3000,
                  seed: int = 0) -> BenchmarkComparison:
    """Both policies for one benchmark."""
    profile = BENCHMARKS[name]
    cow = run_policy(profile, "copy-on-write", scale=scale,
                     warmup_accesses=warmup_accesses, seed=seed)
    oow = run_policy(profile, "overlay-on-write", scale=scale,
                     warmup_accesses=warmup_accesses, seed=seed)
    return BenchmarkComparison(benchmark=name, type_id=profile.type_id,
                               cow=cow, oow=oow)


def run_suite(benchmarks: Optional[List[str]] = None, scale: float = 1.0,
              warmup_accesses: int = 3000,
              seed: int = 0) -> List[BenchmarkComparison]:
    """Figures 8 and 9 over the full 15-benchmark suite (paper order)."""
    names = benchmarks if benchmarks is not None else TYPE_ORDER
    return [run_benchmark(name, scale=scale,
                          warmup_accesses=warmup_accesses, seed=seed)
            for name in names]


def summarize(results: List[BenchmarkComparison]) -> Dict[str, float]:
    """The paper's headline numbers: mean memory reduction and mean
    performance improvement of overlay-on-write over copy-on-write."""
    with_memory = [r for r in results if r.cow.additional_memory_bytes > 0]
    memory_reduction = (sum(r.memory_reduction for r in with_memory)
                        / len(with_memory)) if with_memory else 0.0
    perf = sum(r.performance_improvement for r in results) / len(results)
    return {"memory_reduction": memory_reduction,
            "performance_improvement": perf}


def format_figure8(results: List[BenchmarkComparison]) -> str:
    """Figure 8 as text: additional memory (MB) per benchmark."""
    lines = ["Figure 8: Additional memory consumed after a fork (MB)",
             f"{'benchmark':<10} {'type':>4} {'copy-on-write':>14} "
             f"{'overlay-on-write':>17}"]
    for r in results:
        lines.append(f"{r.benchmark:<10} {r.type_id:>4} "
                     f"{r.cow.additional_memory_mb:>14.3f} "
                     f"{r.oow.additional_memory_mb:>17.3f}")
    cow_mean = sum(r.cow.additional_memory_mb for r in results) / len(results)
    oow_mean = sum(r.oow.additional_memory_mb for r in results) / len(results)
    lines.append(f"{'mean':<10} {'':>4} {cow_mean:>14.3f} {oow_mean:>17.3f}")
    return "\n".join(lines)


def format_figure9(results: List[BenchmarkComparison]) -> str:
    """Figure 9 as text: CPI per benchmark (lower is better)."""
    lines = ["Figure 9: Performance after a fork (cycles/instruction)",
             f"{'benchmark':<10} {'type':>4} {'copy-on-write':>14} "
             f"{'overlay-on-write':>17}"]
    for r in results:
        lines.append(f"{r.benchmark:<10} {r.type_id:>4} "
                     f"{r.cow.cpi:>14.2f} {r.oow.cpi:>17.2f}")
    cow_mean = sum(r.cow.cpi for r in results) / len(results)
    oow_mean = sum(r.oow.cpi for r in results) / len(results)
    lines.append(f"{'mean':<10} {'':>4} {cow_mean:>14.2f} {oow_mean:>17.2f}")
    return "\n".join(lines)
