"""Section 4.5: hardware storage cost of the overlay framework.

The paper's accounting:

* each OMT cache entry is 512 bits (48b OPN + 48b OMSaddr + 64b
  OBitVector + 64 x 5b slot pointers + 32b free vector), so the 64-entry
  OMT cache is 4KB;
* TLB entries widen by the 64-bit OBitVector: 8.5KB across a 64-entry L1
  and a 1024-entry L2 TLB;
* cache tags widen by 16 bits for the larger physical address: 82KB
  across 64KB L1 + 512KB L2 + 2MB L3;
* total: 94.5KB.

This module recomputes those numbers from the same structural
parameters, so the ``bench_hardware_cost`` target regenerates the
section's arithmetic and ablations can vary structure sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .config import DEFAULT_CONFIG, SystemConfig
from ..core.obitvector import OBitVector
from ..core.omt import OMT_ENTRY_BITS


@dataclass
class HardwareCost:
    """Storage overheads in bytes."""

    omt_cache_bytes: int
    tlb_extension_bytes: int
    cache_tag_extension_bytes: int

    @property
    def total_bytes(self) -> int:
        return (self.omt_cache_bytes + self.tlb_extension_bytes
                + self.cache_tag_extension_bytes)


def compute_hardware_cost(config: SystemConfig = DEFAULT_CONFIG,
                          extra_tag_bits: int = 16) -> HardwareCost:
    """Recompute Section 4.5's storage arithmetic from *config*."""
    omt_cache_bits = config.omt_cache_entries * OMT_ENTRY_BITS
    tlb_entries = config.l1_tlb_entries + config.l2_tlb_entries
    tlb_bits = tlb_entries * OBitVector.WIDTH
    total_cache_lines = (config.l1_bytes + config.l2_bytes
                         + config.l3_bytes) // config.cache_line_bytes
    tag_bits = total_cache_lines * extra_tag_bits
    return HardwareCost(omt_cache_bytes=omt_cache_bits // 8,
                        tlb_extension_bytes=tlb_bits // 8,
                        cache_tag_extension_bytes=tag_bits // 8)


def format_hardware_cost(cost: HardwareCost) -> str:
    rows: List[Tuple[str, float]] = [
        ("OMT cache (64 x 512-bit entries)", cost.omt_cache_bytes / 1024),
        ("TLB OBitVector extension (L1+L2 TLB)",
         cost.tlb_extension_bytes / 1024),
        ("Cache tag extension (16b x L1+L2+L3 lines)",
         cost.cache_tag_extension_bytes / 1024),
        ("Total", cost.total_bytes / 1024),
    ]
    width = max(len(name) for name, _ in rows)
    lines = ["Section 4.5: hardware storage cost"]
    lines += [f"{name:<{width}}  {kb:7.1f} KB" for name, kb in rows]
    return "\n".join(lines)
