"""Sections 2.2 / 4.3.3: the critical-path cost of one CoW break.

A microbenchmark isolating the paper's latency argument: on a write to a
shared page, copy-on-write pays a full page copy plus a remap with TLB
shootdown *before* the store can proceed, while overlay-on-write pays a
single-line move plus one coherence message.  This regenerates the text's
qualitative claim as a measured cycle comparison, and doubles as the
remap-latency ablation (shootdown vs coherence-based remap).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.address import PAGE_SIZE
from ..osmodel.cow import CopyOnWritePolicy
from ..osmodel.kernel import Kernel
from ..techniques.overlay_on_write import OverlayOnWritePolicy

VPN = 0x100


@dataclass
class RemapLatency:
    """Critical-path cycles of the first write to a CoW page."""

    copy_on_write_cycles: int
    overlay_on_write_cycles: int

    @property
    def speedup(self) -> float:
        if self.overlay_on_write_cycles == 0:
            return float("inf") if self.copy_on_write_cycles else 0.0
        return self.copy_on_write_cycles / self.overlay_on_write_cycles


def _first_write_latency(policy_name: str) -> int:
    kernel = Kernel()
    parent = kernel.create_process()
    kernel.mmap(parent, VPN, 1, fill=b"orig")
    if policy_name == "copy":
        kernel.install_cow_policy(CopyOnWritePolicy(kernel))
    else:
        kernel.install_cow_policy(OverlayOnWritePolicy(kernel))
    kernel.fork(parent)
    return kernel.system.write(parent.asid, VPN * PAGE_SIZE + 8, b"x" * 8)


def measure_remap_latency() -> RemapLatency:
    """Measure both mechanisms' first-write critical path on identical,
    freshly forked machines."""
    return RemapLatency(
        copy_on_write_cycles=_first_write_latency("copy"),
        overlay_on_write_cycles=_first_write_latency("overlay"))


def format_remap_latency(result: RemapLatency) -> str:
    return "\n".join([
        "First write to a copy-on-write page (critical-path cycles)",
        f"copy-on-write    (page copy + shootdown): "
        f"{result.copy_on_write_cycles:6d}",
        f"overlay-on-write (line move + coherence): "
        f"{result.overlay_on_write_cycles:6d}",
        f"overlay-on-write is {result.speedup:.1f}x faster off the "
        f"critical path",
    ])
