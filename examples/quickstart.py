"""Quickstart: the page-overlay framework in five minutes.

Builds a simulated machine, forks a process, and contrasts
overlay-on-write with classic copy-on-write on the same write — the
paper's headline mechanism (Sections 2.2 and 5.1).

Run:  python examples/quickstart.py
"""

from repro.core.address import PAGE_SIZE
from repro.osmodel.cow import CopyOnWritePolicy
from repro.osmodel.kernel import Kernel
from repro.techniques.overlay_on_write import OverlayOnWritePolicy


def demo(policy_name):
    # A kernel wires up the whole machine of the paper's Table 2: cores,
    # TLBs with OBitVectors, three cache levels, the DDR3 channel, the
    # Overlay Memory Store, and the OMT behind the memory controller.
    kernel = Kernel()
    parent = kernel.create_process()
    kernel.mmap(parent, 0x100, 16, fill=b"parent-data!")

    if policy_name == "overlay-on-write":
        kernel.install_cow_policy(OverlayOnWritePolicy(kernel))
    else:
        kernel.install_cow_policy(CopyOnWritePolicy(kernel))

    child = kernel.fork(parent)
    marker = kernel.memory_marker()

    # The child updates 8 bytes in each of 10 pages.
    base = 0x100 * PAGE_SIZE
    total_latency = 0
    for page in range(10):
        total_latency += kernel.system.write(
            child.asid, base + page * PAGE_SIZE, b"child!!!_")

    # Both processes see their own data — isolation is identical; only
    # the cost differs.
    child_view, _ = kernel.system.read(child.asid, base, 9)
    parent_view, _ = kernel.system.read(parent.asid, base, 12)
    assert child_view == b"child!!!_"
    assert parent_view == b"parent-data!"

    kernel.system.hierarchy.flush_dirty()  # realise lazy overlay space
    extra = kernel.additional_memory_since(marker)
    print(f"{policy_name:>17}: {total_latency:>7d} cycles for 10 writes, "
          f"{extra / 1024:6.1f} KB extra memory")
    return kernel, child


def main():
    print("First write to a forked page, copy-on-write vs overlay-on-write")
    demo("copy-on-write")
    kernel, child = demo("overlay-on-write")

    # Under overlay-on-write each written page holds exactly one overlay
    # line; the rest of the page still comes from the shared frame.
    lines = kernel.system.overlay_line_count(child.asid, 0x100)
    print(f"\noverlay lines on the first written page: {lines} "
          f"(1 line = 64B instead of a 4KB page copy)")

    # When the overlay stops paying off, the OS promotes the page
    # (Section 4.3.4) back to a plain physical page.
    new_ppn = kernel.allocator.allocate()
    kernel.system.promote(child.asid, 0x100, "copy-and-commit",
                          new_ppn=new_ppn)
    data, _ = kernel.system.read(child.asid, 0x100 * PAGE_SIZE, 9)
    assert data == b"child!!!_"
    print("after copy-and-commit promotion the child keeps its data and "
          "owns a private frame")


if __name__ == "__main__":
    main()
