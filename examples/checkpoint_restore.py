"""Overlay-based checkpointing with crash recovery (Section 5.3.2).

A long-running "solver" updates a few cache lines per epoch.  Overlays
capture exactly those deltas; each checkpoint ships only the overlays to
the backing store, then commits them.  After a simulated crash, the
memory image is rebuilt from the base snapshot plus the shipped deltas.

Run:  python examples/checkpoint_restore.py
"""

import random

from repro.core.address import LINE_SIZE, PAGE_SIZE
from repro.osmodel.kernel import Kernel
from repro.techniques.checkpoint import CheckpointManager

PAGES = 32
BASE_VPN = 0x200
BASE = BASE_VPN * PAGE_SIZE
EPOCHS = 5


def solver_step(kernel, process, rng, epoch):
    """One epoch of 'computation': update 12 random lines."""
    for _ in range(12):
        page = rng.randrange(PAGES)
        line = rng.randrange(64)
        payload = f"e{epoch:02d}p{page:03d}l{line:02d}".encode()
        kernel.system.write(process.asid,
                            BASE + page * PAGE_SIZE + line * LINE_SIZE,
                            payload)


def main():
    kernel = Kernel()
    process = kernel.create_process()
    kernel.mmap(process, BASE_VPN, PAGES, fill=b"initial-state!")
    manager = CheckpointManager(kernel, process)
    rng = random.Random(7)

    manager.begin()
    for epoch in range(EPOCHS):
        solver_step(kernel, process, rng, epoch)
        record = manager.take_checkpoint()
        print(f"epoch {epoch}: checkpoint wrote {record.bytes_written:>5d} B "
              f"(page-granularity would write "
              f"{record.page_granularity_bytes:>6d} B)")

    reduction = manager.bandwidth_reduction
    print(f"\nbacking-store bandwidth saved vs page-granularity "
          f"checkpoints: {reduction:.0%}")

    # --- the crash ------------------------------------------------------
    live_image = {vpn: kernel.system.page_bytes(process.asid, vpn)
                  for vpn in process.mappings}
    print("\nsimulating a crash: rebuilding memory from base + deltas...")
    recovered = manager.restore_view(EPOCHS)
    assert recovered == live_image
    print(f"recovered {len(recovered)} pages; image matches the live "
          f"state byte-for-byte")

    # Partial recovery also works: roll back to any earlier checkpoint.
    halfway = manager.restore_view(2)
    changed = sum(1 for vpn in live_image if halfway[vpn] != live_image[vpn])
    print(f"rolling back to epoch 2 instead: {changed} pages differ from "
          f"the final state (later epochs undone)")


if __name__ == "__main__":
    main()
