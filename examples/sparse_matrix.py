"""Sparse matrix-vector multiplication over page overlays (Section 5.2).

The matrix looks dense to software — every virtual page maps to one
shared zero page — but only the non-zero cache lines exist, in overlays.
The example compares one SpMV iteration against CSR and the dense
representation, verifies all three produce the same result (the overlay
one computed from the simulated memory itself), and shows the dynamic
update that software formats struggle with.

Run:  python examples/sparse_matrix.py
"""

import numpy as np

from repro.osmodel.kernel import Kernel
from repro.sparse.csr import CSRMatrix
from repro.sparse.matrix_gen import generate_with_locality
from repro.sparse.overlay_rep import OverlaySparseMatrix
from repro.sparse.spmv import MATRIX_BASE_VPN, ideal_memory_bytes, run_spmv


def main():
    # A banded-like matrix with good non-zero locality (L ~ 6), the
    # regime where the paper shows overlays beating CSR.
    matrix = generate_with_locality(rows=64, cols=131072, nnz=4000,
                                    locality=6.0, seed=42)
    x = np.random.RandomState(0).rand(matrix.cols)
    print(f"matrix: {matrix.rows}x{matrix.cols}, nnz={matrix.nnz}, "
          f"L={matrix.locality:.2f}")
    print(f"ideal storage (values only): "
          f"{ideal_memory_bytes(matrix) / 1024:.1f} KB\n")

    results = {}
    for name in ("csr", "overlay"):
        results[name] = run_spmv(matrix, name, x, check_result=True)
    assert np.allclose(results["csr"].y, results["overlay"].y)

    print(f"{'representation':>14} {'cycles':>10} {'memory KB':>10}")
    for name, result in results.items():
        print(f"{name:>14} {result.cycles:>10d} "
              f"{result.memory_bytes / 1024:>10.1f}")
    speedup = results["csr"].cycles / results["overlay"].cycles
    print(f"\noverlays are {speedup:.2f}x faster than CSR here "
          f"(L > 4.5 regime)")

    # --- the dynamic-update story -------------------------------------
    # "Dynamically inserting non-zero values into a sparse matrix is as
    # simple as moving a cache line to the overlay."
    kernel = Kernel()
    process = kernel.create_process()
    overlay = OverlaySparseMatrix(matrix)
    overlay.build(kernel, process, MATRIX_BASE_VPN)
    csr = CSRMatrix(matrix)

    row, col = 3, 777
    csr_moves = csr.insert(row, col, 1.25)
    overlay_lines = overlay.insert(row, col, 1.25)
    print(f"\ninserting one non-zero at ({row}, {col}):")
    print(f"   CSR shifts {csr_moves} array elements")
    print(f"   overlays move {overlay_lines} cache line into the overlay")

    y = overlay.multiply_in_simulator(x)
    assert np.allclose(y, overlay.pattern.to_numpy() @ x)
    print("\nSpMV recomputed from the simulated memory still matches "
          "numpy after the update")


if __name__ == "__main__":
    main()
