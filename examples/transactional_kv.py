"""A transactional key-value store on virtualized speculation
(Section 5.3.3).

Every transaction's stores go to overlays (speculative state); commit
folds them into the physical pages, abort discards them.  Because
overlays spill to the Overlay Memory Store, a transaction can touch far
more data than any cache tier holds — the paper's "potentially unbounded
speculation".

Run:  python examples/transactional_kv.py
"""

import struct

from repro.core.address import PAGE_SIZE
from repro.osmodel.kernel import Kernel
from repro.techniques.speculation import SpeculationContext

SLOTS = 512           # fixed-size table: key -> 56-byte value + 8B length
SLOT_BYTES = 64       # one cache line per slot
BASE_VPN = 0x300
BASE = BASE_VPN * PAGE_SIZE


class TransactionalKV:
    """A tiny open-addressed KV store with overlay-backed transactions."""

    def __init__(self):
        self.kernel = Kernel()
        self.process = self.kernel.create_process()
        pages = SLOTS * SLOT_BYTES // PAGE_SIZE
        self.kernel.mmap(self.process, BASE_VPN, pages)
        self._spec = SpeculationContext(self.kernel, self.process)

    def _slot_addr(self, key):
        return BASE + (hash(key) % SLOTS) * SLOT_BYTES

    def _write(self, vaddr, data):
        if self._spec.is_open:
            self._spec.write(vaddr, data)
        else:
            self.kernel.system.write(self.process.asid, vaddr, data)

    def put(self, key, value: bytes):
        if len(value) > 56:
            raise ValueError("value too large for one slot")
        record = struct.pack("<Q", len(value)) + value
        self._write(self._slot_addr(key), record)

    def get(self, key):
        raw, _ = self.kernel.system.read(self.process.asid,
                                         self._slot_addr(key), 64)
        length = struct.unpack("<Q", raw[:8])[0]
        return raw[8:8 + length] if length else None

    # -- transactions ------------------------------------------------------

    def begin(self):
        self._spec.begin()

    def commit(self):
        self._spec.commit()

    def abort(self):
        self._spec.abort()

    @property
    def speculative_lines(self):
        return self._spec.speculative_line_count()


def main():
    kv = TransactionalKV()
    kv.put("account:alice", b"balance=100")
    kv.put("account:bob", b"balance=50")

    # A transfer that fails its invariant check mid-way: abort.
    kv.begin()
    kv.put("account:alice", b"balance=-20")   # oops, overdraft
    kv.put("account:bob", b"balance=170")
    print("inside txn :", kv.get("account:alice"), kv.get("account:bob"))
    print("speculative cache lines held in overlays:", kv.speculative_lines)
    kv.abort()
    print("after abort:", kv.get("account:alice"), kv.get("account:bob"))
    assert kv.get("account:alice") == b"balance=100"

    # The same transfer with a valid amount: commit.
    kv.begin()
    kv.put("account:alice", b"balance=30")
    kv.put("account:bob", b"balance=120")
    kv.commit()
    print("after commit:", kv.get("account:alice"), kv.get("account:bob"))
    assert kv.get("account:bob") == b"balance=120"

    # Unbounded speculation: touch hundreds of slots in one transaction,
    # flush the caches mid-flight, and still commit successfully.
    kv.begin()
    for i in range(400):
        kv.put(f"bulk:{i}", f"value-{i}".encode())
    kv.kernel.system.hierarchy.flush_dirty()   # speculative lines evicted!
    spilled = kv.kernel.system.overlay_memory_allocated
    kv.commit()
    assert kv.get("bulk:399") == b"value-399"
    print(f"\nbulk txn of 400 puts survived cache eviction "
          f"({spilled / 1024:.0f} KB spilled to the Overlay Memory Store) "
          f"and committed")


if __name__ == "__main__":
    main()
