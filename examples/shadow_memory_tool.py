"""A memcheck-style tool on overlay shadow memory (Section 5.3.4).

Fine-grained metadata is the classic use of shadow memory: track, per
8-byte word, whether it has been initialised, and flag reads of
uninitialised data.  Tools like memcheck pay for software shadow lookups
on every access; with overlays, the shadow bytes live in the page's
overlay (the Overlay Address Space *is* the shadow address space) and a
``metadata load`` reads them directly — and the shadow costs 64B per
*line* that actually has metadata, not a shadow page per data page.

Run:  python examples/shadow_memory_tool.py
"""

from repro.core.address import PAGE_SIZE
from repro.osmodel.kernel import Kernel
from repro.techniques.metadata import MetadataManager, WORD_BYTES

HEAP_PAGES = 8
HEAP_VPN = 0x600
HEAP = HEAP_VPN * PAGE_SIZE

TAG_UNINIT = 0
TAG_INIT = 1
TAG_FREED = 2


class MemCheck:
    """Initialised-memory checking over overlay shadow memory."""

    def __init__(self):
        self.kernel = Kernel()
        self.process = self.kernel.create_process()
        self.kernel.mmap(self.process, HEAP_VPN, HEAP_PAGES)
        self.shadow = MetadataManager(self.kernel, self.process)
        self._brk = HEAP
        self.reports = []

    # -- a toy allocator instrumented with shadow updates ---------------------

    def malloc(self, size):
        addr = self._brk
        self._brk += ((size + WORD_BYTES - 1) // WORD_BYTES) * WORD_BYTES
        # Fresh allocations are uninitialised (tag stays 0).
        return addr

    def free(self, addr, size):
        word = (addr // WORD_BYTES) * WORD_BYTES
        while word < addr + size:
            self.shadow.metadata_store(word, TAG_FREED)
            word += WORD_BYTES

    # -- instrumented accesses ---------------------------------------------------

    def store(self, addr, data):
        self.kernel.system.write(self.process.asid, addr, data)
        word = (addr // WORD_BYTES) * WORD_BYTES
        while word < addr + len(data):
            self.shadow.metadata_store(word, TAG_INIT)
            word += WORD_BYTES

    def load(self, addr, size):
        word = (addr // WORD_BYTES) * WORD_BYTES
        while word < addr + size:
            tag = self.shadow.metadata_load(word)
            if tag == TAG_UNINIT:
                self.reports.append(
                    f"uninitialised read of {size}B at {addr:#x}")
                break
            if tag == TAG_FREED:
                self.reports.append(
                    f"use-after-free read of {size}B at {addr:#x}")
                break
            word += WORD_BYTES
        data, _ = self.kernel.system.read(self.process.asid, addr, size)
        return data


def main():
    tool = MemCheck()

    buf = tool.malloc(64)
    tool.store(buf, b"A" * 32)          # initialise only the first half
    tool.load(buf, 16)                  # fine
    tool.load(buf + 32, 8)              # uninitialised!

    stale = tool.malloc(32)
    tool.store(stale, b"B" * 32)
    tool.free(stale, 32)
    tool.load(stale, 8)                 # use-after-free!

    print("memcheck reports:")
    for report in tool.reports:
        print("  -", report)
    assert len(tool.reports) == 2

    shadow_bytes = tool.shadow.shadow_bytes
    page_granularity = HEAP_PAGES * PAGE_SIZE  # one shadow page per page
    print(f"\nshadow memory used: {shadow_bytes} B "
          f"(a page-granularity shadow scheme would reserve "
          f"{page_granularity} B)")
    print("regular loads/stores were never slowed: the shadow lives in "
          "overlays, off the data path")


if __name__ == "__main__":
    main()
