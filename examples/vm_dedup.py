"""Fine-grained deduplication across virtual machines (Section 5.3.1).

Models the Difference Engine scenario [23]: several "VMs" run the same
guest OS, so their kernel-image pages are nearly identical — same code,
slightly different patched bytes.  Page-granularity sharing (KSM-style)
can only merge *identical* pages; overlays merge *similar* pages, storing
each VM's few differing cache lines in its overlay.

Run:  python examples/vm_dedup.py
"""

import random

from repro.core.address import LINE_SIZE, PAGE_SIZE
from repro.osmodel.kernel import Kernel
from repro.techniques.dedup import DeduplicationManager

GUEST_PAGES = 24
NUM_VMS = 4
BASE_VPN = 0x500


def boot_vm(kernel, guest_image, patch_rng):
    """Create a 'VM' (process) whose pages are the guest image with a
    couple of VM-specific patched lines per page."""
    vm = kernel.create_process()
    kernel.mmap(vm, BASE_VPN, GUEST_PAGES)
    for page, content in enumerate(guest_image):
        patched = bytearray(content)
        for _ in range(2):  # two VM-specific lines per page
            line = patch_rng.randrange(64)
            patch = f"vm{vm.pid}-line{line}".encode()
            start = line * LINE_SIZE
            patched[start:start + len(patch)] = patch
        kernel.system.main_memory.write_page(vm.mappings[BASE_VPN + page],
                                             bytes(patched))
    return vm


def main():
    kernel = Kernel()
    rng = random.Random(1)
    guest_image = [bytes([rng.randrange(1, 255)]) * PAGE_SIZE
                   for _ in range(GUEST_PAGES)]

    vms = [boot_vm(kernel, guest_image, random.Random(100 + i))
           for i in range(NUM_VMS)]
    before = kernel.allocator.bytes_in_use
    print(f"{NUM_VMS} VMs x {GUEST_PAGES} pages booted: "
          f"{before / 1024:.0f} KB in use")

    views = {(vm.asid, vpn): kernel.system.page_bytes(vm.asid, vpn)
             for vm in vms for vpn in vm.mappings}

    manager = DeduplicationManager(kernel, max_diff_lines=8)
    candidates = [(vm.asid, vpn) for vpn in range(BASE_VPN,
                                                  BASE_VPN + GUEST_PAGES)
                  for vm in vms]
    merged = manager.deduplicate(candidates)
    after = kernel.allocator.bytes_in_use

    print(f"deduplicated {merged} pages "
          f"({manager.stats.overlay_lines_created} difference lines kept "
          f"in overlays)")
    print(f"memory in use: {before / 1024:.0f} KB -> {after / 1024:.0f} KB "
          f"({1 - after / before:.0%} saved)")

    # Every VM still observes exactly its own patched image — accessing a
    # "patched" page needs no software patching step, unlike Difference
    # Engine.
    for (asid, vpn), image in views.items():
        assert kernel.system.page_bytes(asid, vpn) == image
    print("all VM page contents verified identical to pre-dedup state")

    # A VM writing to a merged page diverges privately via its overlay.
    vm0 = vms[0]
    kernel.system.write(vm0.asid, BASE_VPN * PAGE_SIZE, b"vm0-dirty")
    assert kernel.system.page_bytes(vms[1].asid, BASE_VPN)[:9] != b"vm0-dirty"
    print("post-dedup writes diverge per-VM through overlays, as with "
          "copy-on-write but at line granularity")


if __name__ == "__main__":
    main()
