"""Setuptools shim.

Kept alongside pyproject.toml so `pip install -e .` works in offline
environments whose setuptools lacks PEP 660 editable-wheel support
(pip falls back to the legacy `setup.py develop` path).
"""

from setuptools import setup

setup()
